// Tests for the fault-tolerant source acquisition layer: backoff schedule,
// circuit-breaker state machine, deterministic fault injection, the prober
// end-to-end (including the 200-source / 30%-transient acceptance scenario)
// and graceful degradation through the QEFs and the engine.
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/change_feed.h"
#include "core/engine.h"
#include "core/report.h"
#include "core/session.h"
#include "source/live_universe.h"
#include "qef/qef.h"
#include "qef/quality_model.h"
#include "sketch/distinct_estimator.h"
#include "source/flaky.h"
#include "source/prober.h"
#include "source/universe.h"
#include "util/backoff.h"
#include "util/fault_injection.h"
#include "workload/generator.h"

namespace ube {
namespace {

// ------------------------------- backoff -------------------------------

TEST(BackoffTest, DeterministicForSameSeed) {
  BackoffPolicy policy;
  BackoffSchedule a(policy, Rng(7));
  BackoffSchedule b(policy, Rng(7));
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDelayMs(), b.NextDelayMs()) << "delay " << i;
  }
  EXPECT_EQ(a.num_delays(), 16);
}

TEST(BackoffTest, DifferentSeedsDiverge) {
  BackoffPolicy policy;
  BackoffSchedule a(policy, Rng(7));
  BackoffSchedule b(policy, Rng(8));
  bool any_differ = false;
  for (int i = 0; i < 16; ++i) {
    if (a.NextDelayMs() != b.NextDelayMs()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(BackoffTest, DelaysStayWithinBaseAndCap) {
  BackoffPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.max_delay_ms = 200.0;
  policy.multiplier = 3.0;
  BackoffSchedule schedule(policy, Rng(3));
  for (int i = 0; i < 100; ++i) {
    double delay = schedule.NextDelayMs();
    EXPECT_GE(delay, policy.base_delay_ms);
    EXPECT_LE(delay, policy.max_delay_ms);
  }
}

TEST(BackoffTest, ZeroMultiplierDegeneratesToConstantBase) {
  BackoffPolicy policy;
  policy.base_delay_ms = 25.0;
  policy.multiplier = 0.0;  // window collapses: hi == lo == base
  BackoffSchedule schedule(policy, Rng(1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(schedule.NextDelayMs(), 25.0);
  }
}

// ---------------------------- circuit breaker ----------------------------

TEST(CircuitBreakerTest, TripsAfterThresholdConsecutiveFailures) {
  CircuitBreaker::Options options;
  options.trip_threshold = 3;
  options.cooldown_ms = 100.0;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(1.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.num_trips(), 1);
  EXPECT_DOUBLE_EQ(breaker.open_until_ms(), 102.0);
  EXPECT_FALSE(breaker.AllowRequest(50.0));
}

TEST(CircuitBreakerTest, HalfOpenAfterCooldownThenClosesOnSuccess) {
  CircuitBreaker::Options options;
  options.trip_threshold = 1;
  options.cooldown_ms = 100.0;
  CircuitBreaker breaker(options);
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.AllowRequest(100.0));  // cool-down over: half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.num_trips(), 1);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  CircuitBreaker::Options options;
  options.trip_threshold = 3;
  options.cooldown_ms = 100.0;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_TRUE(breaker.AllowRequest(100.0));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // One failure — not trip_threshold — reopens from half-open.
  breaker.RecordFailure(100.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.num_trips(), 2);
  EXPECT_DOUBLE_EQ(breaker.open_until_ms(), 200.0);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  CircuitBreaker::Options options;
  options.trip_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(1.0);
  breaker.RecordSuccess();
  breaker.RecordFailure(2.0);
  breaker.RecordFailure(3.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.num_trips(), 0);
}

// ----------------------------- fault plans -----------------------------

TEST(FaultPlanTest, DecideIsPureAndDeterministic) {
  FaultRates rates;
  rates.transient = 0.4;
  rates.timeout = 0.2;
  rates.stale = 0.2;
  FaultPlan plan(99, rates);
  uint64_t key = FaultPlan::KeyFor("books-src-5");
  for (int attempt = 0; attempt < 8; ++attempt) {
    FaultDecision a = plan.Decide(key, attempt);
    FaultDecision b = plan.Decide(key, attempt);
    EXPECT_EQ(a.kind, b.kind) << "attempt " << attempt;
    EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
    EXPECT_DOUBLE_EQ(a.staleness, b.staleness);
  }
}

TEST(FaultPlanTest, ZeroRatesNeverInjectAndAreDisabled) {
  FaultPlan plan(1234, FaultRates{});
  EXPECT_FALSE(plan.enabled());
  for (int attempt = 0; attempt < 4; ++attempt) {
    FaultDecision d = plan.Decide(FaultPlan::KeyFor("anything"), attempt);
    EXPECT_EQ(d.kind, FaultKind::kNone);
  }
  EXPECT_TRUE(FaultPlan().rates().AllZero());
}

TEST(FaultPlanTest, StickyFaultsPersistAcrossAttempts) {
  FaultRates permanent;
  permanent.permanent = 1.0;
  FaultPlan gone(5, permanent);
  FaultRates stale_rates;
  stale_rates.stale = 1.0;
  FaultPlan stale(5, stale_rates);
  uint64_t key = FaultPlan::KeyFor("sticky-source");
  double first_staleness = stale.Decide(key, 0).staleness;
  EXPECT_GT(first_staleness, 0.0);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(gone.Decide(key, attempt).kind, FaultKind::kPermanent);
    FaultDecision d = stale.Decide(key, attempt);
    EXPECT_EQ(d.kind, FaultKind::kStale);
    EXPECT_DOUBLE_EQ(d.staleness, first_staleness);  // per-source, sticky
  }
}

TEST(FaultPlanTest, RatesFromEnvOverridesTransient) {
  FaultRates defaults;
  defaults.transient = 0.05;
  ::setenv(FaultPlan::kFaultRateEnvVar, "0.3", 1);
  FaultRates from_env = FaultPlan::RatesFromEnv(defaults);
  EXPECT_DOUBLE_EQ(from_env.transient, 0.3);
  EXPECT_GT(from_env.timeout, 0.0);
  ::setenv(FaultPlan::kFaultRateEnvVar, "7.5", 1);  // clamped to [0, 1]
  EXPECT_LE(FaultPlan::RatesFromEnv(defaults).transient, 1.0);
  ::unsetenv(FaultPlan::kFaultRateEnvVar);
  EXPECT_DOUBLE_EQ(FaultPlan::RatesFromEnv(defaults).transient, 0.05);
}

// ------------------------------- prober --------------------------------

DataSource MakeSource(const std::string& name,
                      std::vector<std::string> attributes, int64_t cardinality,
                      int64_t first_tuple = 0) {
  DataSource source(name, SourceSchema(std::move(attributes)));
  source.set_cardinality(cardinality);
  auto signature = std::make_unique<ExactSignature>();
  for (int64_t t = 0; t < cardinality; ++t) signature->Add(first_tuple + t);
  source.set_signature(std::move(signature));
  source.SetCharacteristic("mttf", 5.0 + static_cast<double>(cardinality));
  return source;
}

std::vector<std::unique_ptr<ProbeTarget>> MakeTargets(
    const std::vector<const DataSource*>& sources, const FaultPlan* plan) {
  std::vector<std::unique_ptr<ProbeTarget>> targets;
  for (const DataSource* source : sources) {
    auto inner = std::make_unique<InMemoryProbeTarget>(CloneSource(*source));
    if (plan != nullptr && plan->enabled()) {
      targets.push_back(
          std::make_unique<FlakyProbeTarget>(std::move(inner), plan));
    } else {
      targets.push_back(std::move(inner));
    }
  }
  return targets;
}

TEST(ProberTest, CleanNetworkAcquiresEverythingFresh) {
  DataSource a = MakeSource("a", {"title", "author"}, 40);
  DataSource b = MakeSource("b", {"title", "isbn"}, 60, 20);
  SourceProber prober;
  Result<Acquisition> acquired = prober.Acquire(MakeTargets({&a, &b}, nullptr));
  ASSERT_TRUE(acquired.ok()) << acquired.status();
  const Universe& universe = acquired->universe;
  ASSERT_EQ(universe.num_sources(), 2);
  EXPECT_EQ(universe.num_available(), 2);
  EXPECT_EQ(universe.source(0).name(), "a");
  EXPECT_EQ(universe.source(1).cardinality(), 60);
  EXPECT_TRUE(universe.source(0).stats_fresh());
  const AcquisitionReport& report = acquired->report;
  EXPECT_EQ(report.num_acquired(), 2);
  EXPECT_EQ(report.num_dropped(), 0);
  EXPECT_EQ(report.num_degraded(), 0);
  for (const SourceAcquisition& acq : report.sources) {
    EXPECT_EQ(acq.outcome, AcquisitionOutcome::kAcquired);
    EXPECT_EQ(acq.attempts, 1);
    EXPECT_TRUE(acq.status.ok());
  }
}

TEST(ProberTest, PermanentFailureDropsAfterOneAttempt) {
  DataSource a = MakeSource("healthy", {"x"}, 10);
  DataSource b = MakeSource("gone", {"y"}, 10);
  FaultRates rates;
  rates.permanent = 1.0;
  FaultPlan plan(11, rates);
  // Only "gone" goes through the flaky wrapper.
  std::vector<std::unique_ptr<ProbeTarget>> targets;
  targets.push_back(
      std::make_unique<InMemoryProbeTarget>(CloneSource(a)));
  targets.push_back(std::make_unique<FlakyProbeTarget>(
      std::make_unique<InMemoryProbeTarget>(CloneSource(b)), &plan));
  SourceProber prober;
  Result<Acquisition> acquired = prober.Acquire(std::move(targets));
  ASSERT_TRUE(acquired.ok()) << acquired.status();
  EXPECT_EQ(acquired->universe.num_available(), 1);
  EXPECT_EQ(acquired->universe.UnavailableIds(), std::vector<SourceId>{1});
  // The shell keeps the name and id slot but is unavailable and stat-less.
  const DataSource& shell = acquired->universe.source(1);
  EXPECT_EQ(shell.name(), "gone");
  EXPECT_FALSE(shell.available());
  EXPECT_EQ(shell.stats_state(), StatsState::kMissing);
  const SourceAcquisition& acq = acquired->report.sources[1];
  EXPECT_EQ(acq.outcome, AcquisitionOutcome::kDropped);
  EXPECT_EQ(acq.attempts, 1);  // permanent: no pointless retries
  EXPECT_EQ(acq.status.code(), StatusCode::kNotFound);
}

TEST(ProberTest, AllSourcesDroppedIsACleanError) {
  DataSource a = MakeSource("a", {"x"}, 10);
  FaultRates rates;
  rates.permanent = 1.0;
  FaultPlan plan(1, rates);
  SourceProber prober;
  Result<Acquisition> acquired = prober.Acquire(MakeTargets({&a}, &plan));
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ(acquired.status().code(), StatusCode::kUnavailable);
}

TEST(ProberTest, StaleAndTruncatedDegradeButAcquire) {
  DataSource a = MakeSource("stale-one", {"x"}, 10);
  FaultRates stale_rates;
  stale_rates.stale = 1.0;
  FaultPlan stale_plan(2, stale_rates);
  SourceProber prober;
  Result<Acquisition> stale = prober.Acquire(MakeTargets({&a}, &stale_plan));
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->report.sources[0].outcome,
            AcquisitionOutcome::kAcquiredStale);
  EXPECT_GT(stale->report.sources[0].staleness, 0.0);
  EXPECT_EQ(stale->universe.source(0).stats_state(), StatsState::kStale);
  EXPECT_TRUE(stale->universe.source(0).has_signature());

  FaultRates trunc_rates;
  trunc_rates.truncated = 1.0;
  FaultPlan trunc_plan(2, trunc_rates);
  Result<Acquisition> trunc = prober.Acquire(MakeTargets({&a}, &trunc_plan));
  ASSERT_TRUE(trunc.ok());
  EXPECT_EQ(trunc->report.sources[0].outcome,
            AcquisitionOutcome::kAcquiredPartial);
  EXPECT_EQ(trunc->universe.source(0).stats_state(), StatsState::kPartial);
  EXPECT_FALSE(trunc->universe.source(0).has_signature());
  EXPECT_EQ(trunc->universe.source(0).cardinality(), 10);  // survived
}

TEST(ProberTest, PersistentTransientsTripTheBreaker) {
  DataSource a = MakeSource("flapping", {"x"}, 10);
  FaultRates rates;
  rates.transient = 1.0;
  FaultPlan plan(21, rates);
  ProberOptions options;
  options.backoff.max_attempts = 6;
  options.breaker.trip_threshold = 2;
  options.breaker.cooldown_ms = 100.0;
  SourceProber prober(options);
  Result<Acquisition> acquired = prober.Acquire(MakeTargets({&a}, &plan));
  ASSERT_FALSE(acquired.ok());  // the only source dropped
  // Re-probe keeping the report: wrap in a second healthy source.
  DataSource b = MakeSource("healthy", {"y"}, 10);
  std::vector<std::unique_ptr<ProbeTarget>> targets;
  targets.push_back(std::make_unique<FlakyProbeTarget>(
      std::make_unique<InMemoryProbeTarget>(CloneSource(a)), &plan));
  targets.push_back(std::make_unique<InMemoryProbeTarget>(CloneSource(b)));
  Result<Acquisition> mixed = prober.Acquire(std::move(targets));
  ASSERT_TRUE(mixed.ok());
  const SourceAcquisition& acq = mixed->report.sources[0];
  EXPECT_EQ(acq.outcome, AcquisitionOutcome::kDropped);
  EXPECT_EQ(acq.attempts, options.backoff.max_attempts);
  EXPECT_GE(acq.breaker_trips, 1);
  EXPECT_FALSE(acq.status.ok());
}

// Identical fault plan + seed => identical acquisition, for any thread
// count: the replay contract of the acquisition layer.
TEST(ProberTest, ReplayIsBitIdenticalAcrossThreadCounts) {
  WorkloadConfig config;
  config.num_sources = 24;
  config.seed = 99;
  config.scale = 0.002;
  GeneratedWorkload workload = GenerateWorkload(config);
  std::vector<const DataSource*> sources;
  for (SourceId s = 0; s < workload.universe.num_sources(); ++s) {
    sources.push_back(&workload.universe.source(s));
  }
  FaultRates rates;
  rates.transient = 0.4;
  rates.timeout = 0.15;
  rates.permanent = 0.05;
  rates.stale = 0.1;
  rates.truncated = 0.1;
  FaultPlan plan(4242, rates);

  auto run = [&](int num_threads) {
    ProberOptions options;
    options.num_threads = num_threads;
    options.seed = 7;
    SourceProber prober(options);
    Result<Acquisition> acquired = prober.Acquire(MakeTargets(sources, &plan));
    EXPECT_TRUE(acquired.ok()) << acquired.status();
    return std::move(acquired).value();
  };
  Acquisition sequential = run(1);
  Acquisition threaded = run(4);
  ASSERT_EQ(sequential.report.sources.size(), threaded.report.sources.size());
  for (size_t i = 0; i < sequential.report.sources.size(); ++i) {
    const SourceAcquisition& a = sequential.report.sources[i];
    const SourceAcquisition& b = threaded.report.sources[i];
    EXPECT_EQ(a.outcome, b.outcome) << a.name;
    EXPECT_EQ(a.attempts, b.attempts) << a.name;
    EXPECT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms) << a.name;
    EXPECT_DOUBLE_EQ(a.staleness, b.staleness) << a.name;
    EXPECT_EQ(a.breaker_trips, b.breaker_trips) << a.name;
  }
  ASSERT_EQ(sequential.universe.num_sources(), threaded.universe.num_sources());
  for (SourceId s = 0; s < sequential.universe.num_sources(); ++s) {
    EXPECT_EQ(sequential.universe.source(s).cardinality(),
              threaded.universe.source(s).cardinality());
    EXPECT_EQ(sequential.universe.source(s).available(),
              threaded.universe.source(s).available());
  }
}

// ----------------------- degradation in the QEFs -----------------------

// Universe: two cooperating sources with disjoint tuples.
Universe TwoSourceUniverse() {
  Universe universe;
  universe.AddSource(MakeSource("fresh", {"title", "author"}, 100, 0));
  universe.AddSource(MakeSource("shaky", {"title", "isbn"}, 300, 100));
  return universe;
}

QualityModel CardinalityOnlyModel(DegradationPolicy policy,
                                  double stale_discount = 0.5) {
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 1.0);
  DegradationOptions options;
  options.policy = policy;
  options.stale_discount = stale_discount;
  model.set_degradation(options);
  return model;
}

double CardinalityScore(const Universe& universe, const QualityModel& model) {
  std::vector<SourceId> both = {0, 1};
  EvalContext ctx = model.MakeContext(universe, both, nullptr);
  return model.Evaluate(ctx).overall;
}

TEST(DegradationTest, PoliciesAgreeWhenEverythingIsFresh) {
  Universe universe = TwoSourceUniverse();
  for (DegradationPolicy policy :
       {DegradationPolicy::kPessimisticPrior, DegradationPolicy::kLastKnownGood,
        DegradationPolicy::kExcludeRenormalize}) {
    QualityModel model = CardinalityOnlyModel(policy);
    EXPECT_DOUBLE_EQ(CardinalityScore(universe, model), 1.0)
        << DegradationPolicyName(policy);
  }
}

TEST(DegradationTest, StaleSourceIsDiscountedPerPolicy) {
  Universe universe = TwoSourceUniverse();
  universe.mutable_source(1)->set_stats_state(StatsState::kStale, 0.8);

  // Last-known-good: weight 1 - 0.5 * 0.8 = 0.6 on the stale cardinality,
  // full-universe denominator: (100 + 0.6 * 300) / 400.
  QualityModel lkg = CardinalityOnlyModel(DegradationPolicy::kLastKnownGood);
  EXPECT_DOUBLE_EQ(CardinalityScore(universe, lkg), (100.0 + 180.0) / 400.0);

  // Pessimistic prior: stale contributes 0, denominator stays 400.
  QualityModel pess =
      CardinalityOnlyModel(DegradationPolicy::kPessimisticPrior);
  EXPECT_DOUBLE_EQ(CardinalityScore(universe, pess), 100.0 / 400.0);

  // Exclude-and-renormalize: stale leaves numerator AND denominator.
  QualityModel excl =
      CardinalityOnlyModel(DegradationPolicy::kExcludeRenormalize);
  EXPECT_DOUBLE_EQ(CardinalityScore(universe, excl), 100.0 / 100.0);
}

TEST(DegradationTest, MissingStatsContributeNothingUnderEveryPolicy) {
  for (DegradationPolicy policy :
       {DegradationPolicy::kPessimisticPrior, DegradationPolicy::kLastKnownGood,
        DegradationPolicy::kExcludeRenormalize}) {
    Universe universe = TwoSourceUniverse();
    universe.mutable_source(1)->set_stats_state(StatsState::kMissing);
    QualityModel model = CardinalityOnlyModel(policy);
    std::vector<SourceId> both = {0, 1};
    EvalContext ctx = model.MakeContext(universe, both, nullptr);
    EXPECT_EQ(ctx.degraded_count, 1);
    double expected = policy == DegradationPolicy::kExcludeRenormalize
                          ? 1.0          // 100 / fresh-only 100
                          : 100.0 / 400.0;
    EXPECT_DOUBLE_EQ(model.Evaluate(ctx).overall, expected)
        << DegradationPolicyName(policy);
  }
}

TEST(DegradationTest, PartialSourceKeepsCardinalityLosesSignature) {
  Universe universe = TwoSourceUniverse();
  universe.mutable_source(1)->set_signature(nullptr);
  universe.mutable_source(1)->set_stats_state(StatsState::kPartial);
  QualityModel model = CardinalityOnlyModel(DegradationPolicy::kLastKnownGood);
  std::vector<SourceId> both = {0, 1};
  EvalContext ctx = model.MakeContext(universe, both, nullptr);
  // Cardinality is trusted (weight 1) but the source no longer cooperates
  // on signatures.
  EXPECT_DOUBLE_EQ(ctx.effective_cardinality, 400.0);
  EXPECT_EQ(ctx.cooperating_count, 1);
  EXPECT_EQ(ctx.degraded_count, 1);
}

// ------------------------- engine integration --------------------------

Acquisition AcquireWorkload(int num_sources, uint64_t workload_seed,
                            const FaultPlan& plan, int num_threads = 4) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.seed = workload_seed;
  config.scale = 0.002;
  GeneratedWorkload workload = GenerateWorkload(config);
  std::vector<const DataSource*> sources;
  for (SourceId s = 0; s < workload.universe.num_sources(); ++s) {
    sources.push_back(&workload.universe.source(s));
  }
  std::vector<std::unique_ptr<ProbeTarget>> targets;
  for (const DataSource* source : sources) {
    targets.push_back(std::make_unique<FlakyProbeTarget>(
        std::make_unique<InMemoryProbeTarget>(CloneSource(*source)), &plan));
  }
  ProberOptions options;
  options.num_threads = num_threads;
  options.seed = 1;
  SourceProber prober(options);
  Result<Acquisition> acquired = prober.Acquire(std::move(targets));
  EXPECT_TRUE(acquired.ok()) << acquired.status();
  return std::move(acquired).value();
}

SolverOptions QuickSolve() {
  SolverOptions options;
  options.seed = 42;
  options.max_iterations = 120;
  options.stall_iterations = 40;
  return options;
}

TEST(EngineAcquisitionTest, ZeroFaultRateMatchesPlainEngineBitForBit) {
  // The same workload, once loaded directly and once routed through the
  // prober with an all-zero fault plan, must produce the same solution.
  WorkloadConfig config;
  config.num_sources = 30;
  config.seed = 5;
  config.scale = 0.002;
  GeneratedWorkload direct = GenerateWorkload(config);
  Engine plain(std::move(direct.universe), QualityModel::MakeDefault());

  FaultPlan no_faults;  // disabled
  Acquisition acquisition = AcquireWorkload(30, 5, no_faults);
  EXPECT_EQ(acquisition.report.num_dropped(), 0);
  EXPECT_EQ(acquisition.report.num_degraded(), 0);
  Engine probed(std::move(acquisition), QualityModel::MakeDefault());
  ASSERT_NE(probed.acquisition_report(), nullptr);

  ProblemSpec spec;
  spec.max_sources = 6;
  Result<Solution> a = plain.Solve(spec, SolverKind::kTabu, QuickSolve());
  Result<Solution> b = probed.Solve(spec, SolverKind::kTabu, QuickSolve());
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->sources, b->sources);
  EXPECT_DOUBLE_EQ(a->quality, b->quality);
  ASSERT_EQ(a->breakdown.scores.size(), b->breakdown.scores.size());
  for (size_t i = 0; i < a->breakdown.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->breakdown.scores[i], b->breakdown.scores[i]);
  }
}

TEST(EngineAcquisitionTest, PinningADroppedSourceFailsCleanly) {
  FaultRates rates;
  rates.permanent = 0.3;
  FaultPlan plan(8, rates);
  Acquisition acquisition = AcquireWorkload(30, 6, plan);
  std::vector<SourceId> dropped = acquisition.universe.UnavailableIds();
  ASSERT_FALSE(dropped.empty()) << "fault plan injected no permanent faults";
  SourceId victim = dropped.front();
  Engine engine(std::move(acquisition), QualityModel::MakeDefault());

  ProblemSpec spec;
  spec.max_sources = 6;
  spec.source_constraints = {victim};
  Result<Solution> solution = engine.Solve(spec, SolverKind::kTabu,
                                           QuickSolve());
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kUnavailable);

  // EvaluateCandidate with a dropped source is equally clean.
  ProblemSpec free_spec;
  free_spec.max_sources = 6;
  Result<CandidateEvaluator::Evaluation> eval =
      engine.EvaluateCandidate(free_spec, {victim});
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kUnavailable);

  // Session surfaces the same error on the pin gesture itself.
  Session session(&engine);
  Status pin = session.PinSource(victim);
  EXPECT_EQ(pin.code(), StatusCode::kUnavailable);
  ASSERT_NE(session.acquisition_report(), nullptr);
}

TEST(EngineAcquisitionTest, SolutionsNeverUseDroppedSources) {
  FaultRates rates;
  rates.transient = 0.3;
  rates.permanent = 0.15;
  FaultPlan plan(13, rates);
  Acquisition acquisition = AcquireWorkload(30, 7, plan);
  std::vector<SourceId> dropped = acquisition.universe.UnavailableIds();
  ASSERT_FALSE(dropped.empty());
  Engine engine(std::move(acquisition), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 6;
  Result<Solution> solution = engine.Solve(spec, SolverKind::kTabu,
                                           QuickSolve());
  ASSERT_TRUE(solution.ok()) << solution.status();
  for (SourceId s : solution->sources) {
    EXPECT_TRUE(engine.universe().source(s).available())
        << "solution uses dropped source " << s;
  }
}

TEST(EngineAcquisitionTest, EngineIdValidationReportsInsteadOfAborting) {
  WorkloadConfig config;
  config.num_sources = 10;
  config.seed = 3;
  config.scale = 0.002;
  GeneratedWorkload workload = GenerateWorkload(config);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 4;
  Result<CandidateEvaluator::Evaluation> eval =
      engine.EvaluateCandidate(spec, {0, 99});
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kInvalidArgument);
  Result<MatchResult> match = engine.MatchSources(spec, {-2});
  ASSERT_FALSE(match.ok());
  EXPECT_EQ(match.status().code(), StatusCode::kInvalidArgument);
}

TEST(SourceHealthRegistryTest, TripsAndBlocksWithoutConsumingHalfOpenProbe) {
  SourceHealthRegistry health;
  for (int i = 0; i < 3; ++i) health.RecordFailure(7, /*now_ms=*/0.0);
  const CircuitBreaker* breaker = health.FindBreaker(7);
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(health.IsBlocked(7, 100.0));
  // After the cool-down IsBlocked answers false but, being const, must NOT
  // consume the half-open probe: the breaker stays open until someone
  // actually sends a request through AllowRequest.
  EXPECT_FALSE(health.IsBlocked(7, 5'000.0));
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(health.BreakerFor(7).AllowRequest(5'000.0));
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kHalfOpen);
  // An untouched id is never blocked (and stays untracked).
  EXPECT_FALSE(health.IsBlocked(8, 0.0));
  EXPECT_EQ(health.TrackedIds(), std::vector<SourceId>{7});
}

TEST(SourceHealthRegistryTest, ResetWipesBreakerStateAndBackoffBudget) {
  SourceHealthRegistry health;
  for (int i = 0; i < 3; ++i) health.RecordFailure(2, 0.0);
  health.AddBackoffSpent(2, 123.0);
  EXPECT_EQ(health.backoff_spent_ms(2), 123.0);
  EXPECT_TRUE(health.IsBlocked(2, 10.0));

  health.Reset(2);
  EXPECT_EQ(health.FindBreaker(2), nullptr);
  EXPECT_EQ(health.backoff_spent_ms(2), 0.0);
  EXPECT_FALSE(health.IsBlocked(2, 10.0));
  EXPECT_TRUE(health.TrackedIds().empty());
}

TEST(SourceHealthRegistryTest, TrackedIdsAscending) {
  SourceHealthRegistry health;
  health.RecordSuccess(5);
  health.AddBackoffSpent(1, 1.0);
  health.RecordFailure(3, 0.0);
  EXPECT_EQ(health.TrackedIds(), (std::vector<SourceId>{1, 3, 5}));
}

// The satellite fix this PR pins: a source re-added under an existing id —
// revive or brand-new occupant — must not inherit the breaker state or
// backoff budget its predecessor accumulated.
TEST(LiveUniverseHealthTest, ReAddedSourceStartsWithCleanHealth) {
  Universe universe;
  universe.AddSource(DataSource("a", SourceSchema({"title", "author"})));
  universe.AddSource(DataSource("b", SourceSchema({"title", "isbn"})));
  universe.AddSource(DataSource("c", SourceSchema({"author", "price"})));
  LiveUniverse live(std::move(universe));

  // Accumulate bad history on source 1, enough to trip its breaker.
  for (int i = 0; i < 3; ++i) live.health().RecordFailure(1, 0.0);
  live.health().AddBackoffSpent(1, 500.0);
  EXPECT_TRUE(live.health().IsBlocked(1, 1.0));

  ChurnEvent remove;
  remove.time_ms = 10.0;
  remove.kind = ChurnEventKind::kRemove;
  remove.source = 1;
  ASSERT_TRUE(live.Apply(remove).ok());
  EXPECT_FALSE(live.universe().source(1).available());

  ChurnEvent revive;
  revive.time_ms = 20.0;
  revive.kind = ChurnEventKind::kAdd;
  revive.source = 1;
  revive.revive = true;
  ASSERT_TRUE(live.Apply(revive).ok());

  EXPECT_TRUE(live.universe().source(1).available());
  EXPECT_EQ(live.health().FindBreaker(1), nullptr);
  EXPECT_EQ(live.health().backoff_spent_ms(1), 0.0);
  EXPECT_FALSE(live.health().IsBlocked(1, 20.0));
}

// The issue's acceptance scenario: 200 sources, 30% transient fault rate —
// acquisition completes, every degraded/dropped source is reported, and the
// engine still produces a feasible solution over what was acquired.
TEST(EngineAcquisitionTest, EndToEndWithThirtyPercentTransientFaults) {
  FaultRates rates;
  rates.transient = 0.30;
  rates.timeout = 0.10;
  rates.permanent = 0.02;
  rates.stale = 0.05;
  rates.truncated = 0.05;
  FaultPlan plan(20260806, rates);
  Acquisition acquisition = AcquireWorkload(200, 17, plan);
  const AcquisitionReport report = acquisition.report;  // copy for asserts
  ASSERT_EQ(report.sources.size(), 200u);
  EXPECT_GT(report.num_acquired(), 150);  // retries absorb most transients
  // Every source has a definite, consistent outcome.
  for (const SourceAcquisition& acq : report.sources) {
    EXPECT_GE(acq.attempts, 1) << acq.name;
    if (acq.outcome == AcquisitionOutcome::kDropped) {
      EXPECT_FALSE(acq.status.ok()) << acq.name;
    } else {
      EXPECT_TRUE(acq.status.ok()) << acq.name;
    }
    if (acq.outcome == AcquisitionOutcome::kAcquiredStale) {
      EXPECT_GT(acq.staleness, 0.0) << acq.name;
    }
  }
  EXPECT_EQ(report.num_dropped() + report.num_acquired(), 200);

  Engine engine(std::move(acquisition), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 10;
  Result<Solution> solution = engine.Solve(spec, SolverKind::kTabu,
                                           QuickSolve());
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_GT(solution->quality, 0.0);
  EXPECT_FALSE(solution->sources.empty());
  for (SourceId s : solution->sources) {
    EXPECT_TRUE(engine.universe().source(s).available());
  }

  // The report renders: summary plus one line per non-clean source.
  std::string rendered = FormatAcquisitionReport(report);
  EXPECT_NE(rendered.find("sources acquired"), std::string::npos);
  for (const SourceAcquisition& acq : report.sources) {
    if (acq.outcome != AcquisitionOutcome::kAcquired) {
      EXPECT_NE(rendered.find(acq.name), std::string::npos) << acq.name;
    }
  }
  std::string with_degraded = FormatSolution(
      *solution, engine.universe(), engine.quality_model(),
      engine.acquisition_report());
  if (report.num_degraded() + report.num_dropped() > 0) {
    EXPECT_NE(with_degraded.find("degraded sources"), std::string::npos);
  }
}

}  // namespace
}  // namespace ube
