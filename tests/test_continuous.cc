// Engine::RunContinuous and the bounded incumbent repair: the zero-churn
// bit-identity contract, churn-trace determinism across thread counts, the
// repair-then-escalate policy, and RepairIncumbent's sanitize semantics.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/change_feed.h"
#include "core/engine.h"
#include "core/report.h"
#include "optimize/repair.h"
#include "qef/quality_model.h"
#include "source/flaky.h"
#include "workload/generator.h"

namespace ube {
namespace {

Universe MediumUniverse(int num_sources = 24) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.scale = 0.001;
  return GenerateWorkload(config).universe;
}

SolverOptions QuickSolve(int num_threads = 1) {
  SolverOptions options;
  options.seed = 42;
  options.max_iterations = 120;
  options.stall_iterations = 40;
  options.num_threads = num_threads;
  return options;
}

ContinuousOptions QuickContinuous(int num_threads = 1) {
  ContinuousOptions options;
  options.solver_options = QuickSolve(num_threads);
  options.repair.max_iterations = 30;
  options.repair.eval_budget = 1'500;
  return options;
}

ProblemSpec BasicSpec(int m = 6) {
  ProblemSpec spec;
  spec.max_sources = m;
  return spec;
}

ChurnTrace BusyTrace(const Universe& universe, uint64_t seed = 7) {
  ChurnFeedConfig config;
  config.seed = seed;
  config.events_per_sec = 2.0;
  config.horizon_ms = 10'000.0;  // ~20 events over ~10 batches
  return GenerateChurnTrace(universe, config).value();
}

void ExpectSameSolution(const Solution& a, const Solution& b) {
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.quality, b.quality);  // bit-exact
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
  EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
  EXPECT_EQ(a.stats.stop_reason, b.stats.stop_reason);
  ASSERT_EQ(a.breakdown.scores.size(), b.breakdown.scores.size());
  for (size_t i = 0; i < a.breakdown.scores.size(); ++i) {
    EXPECT_EQ(a.breakdown.scores[i], b.breakdown.scores[i]);
  }
}

// Zero-churn contract: an empty feed makes RunContinuous exactly a one-shot
// Solve — byte-identical Solution — for any thread count.
TEST(ContinuousTest, EmptyTraceIsByteIdenticalToOneShotSolve) {
  const ProblemSpec spec = BasicSpec();
  for (int threads : {1, 4}) {
    Engine engine(MediumUniverse(), QualityModel::MakeDefault());
    ContinuousOptions options = QuickContinuous(threads);
    Result<Solution> one_shot =
        engine.Solve(spec, options.solver, options.solver_options);
    ASSERT_TRUE(one_shot.ok()) << one_shot.status();

    Result<ContinuousReport> report =
        engine.RunContinuous(spec, ChurnTrace{}, options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->steps.empty());
    EXPECT_EQ(report->full_solves, 1);
    EXPECT_EQ(report->repairs, 0);
    EXPECT_EQ(report->events_applied, 0);
    ExpectSameSolution(report->final_solution, one_shot.value());
  }
}

// Churn-trace determinism: the full step sequence — incumbents, qualities,
// evictions, escalation decisions — replays bit-identically for any thread
// count.
TEST(ContinuousTest, StepsReplayBitIdenticallyAcrossThreadCounts) {
  Universe universe = MediumUniverse();
  ChurnTrace trace = BusyTrace(universe);
  ASSERT_FALSE(trace.events.empty());
  const ProblemSpec spec = BasicSpec();

  Engine one(CloneUniverse(universe), QualityModel::MakeDefault());
  Engine four(std::move(universe), QualityModel::MakeDefault());
  Result<ContinuousReport> a =
      one.RunContinuous(spec, trace, QuickContinuous(1));
  Result<ContinuousReport> b =
      four.RunContinuous(spec, trace, QuickContinuous(4));
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  EXPECT_EQ(a->events_applied, static_cast<int>(trace.events.size()));
  EXPECT_EQ(a->events_applied, b->events_applied);
  EXPECT_EQ(a->full_solves, b->full_solves);
  EXPECT_EQ(a->repairs, b->repairs);
  EXPECT_EQ(a->escalations, b->escalations);
  EXPECT_EQ(a->last_full_quality, b->last_full_quality);
  ASSERT_EQ(a->steps.size(), b->steps.size());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    const ContinuousStep& sa = a->steps[i];
    const ContinuousStep& sb = b->steps[i];
    EXPECT_EQ(sa.time_ms, sb.time_ms) << "step " << i;
    EXPECT_EQ(sa.events_applied, sb.events_applied) << "step " << i;
    EXPECT_EQ(sa.evicted, sb.evicted) << "step " << i;
    EXPECT_EQ(sa.escalated, sb.escalated) << "step " << i;
    EXPECT_EQ(sa.escalation_reason, sb.escalation_reason) << "step " << i;
    EXPECT_EQ(sa.repair_budget, sb.repair_budget) << "step " << i;
    EXPECT_EQ(sa.drift_events, sb.drift_events) << "step " << i;
    EXPECT_EQ(sa.quality_before, sb.quality_before) << "step " << i;
    EXPECT_EQ(sa.quality_after, sb.quality_after) << "step " << i;
    EXPECT_EQ(sa.evaluations, sb.evaluations) << "step " << i;
    EXPECT_EQ(sa.incumbent, sb.incumbent) << "step " << i;
  }
  ExpectSameSolution(a->final_solution, b->final_solution);
}

// Churn-path delta regression: with a matching-free model (so the delta
// path is genuinely active, not falling back) an entire RunContinuous —
// initial solve, every repair, every escalation over a busy ChurnTrace —
// must replay bit-identically with delta scoring on and off: same step
// fingerprints, counters, incumbents and final solution.
TEST(ContinuousTest, ChurnStepsBitIdenticalWithDeltaOnAndOff) {
  auto data_only_model = [] {
    QualityModel model;
    model.AddQef(std::make_unique<CardinalityQef>(), 0.4);
    model.AddQef(std::make_unique<CoverageQef>(), 0.3);
    model.AddQef(std::make_unique<RedundancyQef>(), 0.2);
    model.AddQef(std::make_unique<CharacteristicQef>(
                     "mttf", Aggregation::kWeightedSum),
                 0.1);
    return model;
  };
  Universe universe = MediumUniverse();
  ChurnTrace trace = BusyTrace(universe, 11);
  ASSERT_FALSE(trace.events.empty());
  const ProblemSpec spec = BasicSpec();

  Engine with(CloneUniverse(universe), data_only_model());
  Engine without(std::move(universe), data_only_model());
  ContinuousOptions delta_on = QuickContinuous();
  delta_on.solver_options.delta_eval = true;
  ContinuousOptions delta_off = QuickContinuous();
  delta_off.solver_options.delta_eval = false;
  Result<ContinuousReport> a = with.RunContinuous(spec, trace, delta_on);
  Result<ContinuousReport> b = without.RunContinuous(spec, trace, delta_off);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  EXPECT_EQ(a->full_solves, b->full_solves);
  EXPECT_EQ(a->repairs, b->repairs);
  EXPECT_EQ(a->escalations, b->escalations);
  EXPECT_EQ(a->last_full_quality, b->last_full_quality);
  ASSERT_EQ(a->steps.size(), b->steps.size());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    const ContinuousStep& sa = a->steps[i];
    const ContinuousStep& sb = b->steps[i];
    EXPECT_EQ(sa.evicted, sb.evicted) << "step " << i;
    EXPECT_EQ(sa.escalated, sb.escalated) << "step " << i;
    EXPECT_EQ(sa.quality_before, sb.quality_before) << "step " << i;
    EXPECT_EQ(sa.quality_after, sb.quality_after) << "step " << i;
    EXPECT_EQ(sa.evaluations, sb.evaluations) << "step " << i;
    EXPECT_EQ(sa.incumbent, sb.incumbent) << "step " << i;
  }
  ExpectSameSolution(a->final_solution, b->final_solution);
}

// Self-healing: after every batch the incumbent only contains sources that
// are alive in the evolved universe, and the engine remains usable.
TEST(ContinuousTest, IncumbentNeverContainsDeadSources) {
  Universe universe = MediumUniverse();
  ChurnTrace trace = BusyTrace(universe, 21);
  Engine engine(std::move(universe), QualityModel::MakeDefault());
  const ProblemSpec spec = BasicSpec();
  Result<ContinuousReport> report =
      engine.RunContinuous(spec, trace, QuickContinuous());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->steps.empty());
  for (const ContinuousStep& step : report->steps) {
    EXPECT_FALSE(step.incumbent.empty());
    EXPECT_TRUE(std::is_sorted(step.incumbent.begin(), step.incumbent.end()));
    EXPECT_LE(static_cast<int>(step.incumbent.size()), spec.max_sources);
    EXPECT_GT(step.quality_after, 0.0);
  }
  // The final incumbent is alive in the final universe.
  for (SourceId s : report->final_solution.sources) {
    EXPECT_TRUE(engine.universe().source(s).available()) << s;
  }
  // The engine still solves against the evolved universe.
  Result<Solution> after = engine.Solve(spec, SolverKind::kTabu, QuickSolve());
  ASSERT_TRUE(after.ok()) << after.status();
}

// Wiping out the whole incumbent leaves repair nothing to seed from; the
// policy must escalate to a full re-solve and recover.
TEST(ContinuousTest, IncumbentWipeoutEscalatesToFullResolve) {
  Universe universe = MediumUniverse();
  const ProblemSpec spec = BasicSpec(4);
  ContinuousOptions options = QuickContinuous();

  // Discover the initial incumbent with an identical solve.
  Engine scout(CloneUniverse(universe), QualityModel::MakeDefault());
  Result<Solution> initial =
      scout.Solve(spec, options.solver, options.solver_options);
  ASSERT_TRUE(initial.ok()) << initial.status();

  ChurnTrace trace;
  double t = 1.0;
  for (SourceId s : initial->sources) {
    ChurnEvent remove;
    remove.time_ms = t;
    remove.kind = ChurnEventKind::kRemove;
    remove.source = s;
    trace.events.push_back(std::move(remove));
    t += 1.0;
  }

  Engine engine(std::move(universe), QualityModel::MakeDefault());
  Result<ContinuousReport> report =
      engine.RunContinuous(spec, trace, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->escalations, 1);
  EXPECT_GE(report->full_solves, 2);  // initial + at least one escalation
  bool saw_wipeout = false;
  for (const ContinuousStep& step : report->steps) {
    if (step.escalation_reason == EscalationReason::kIncumbentWipeout) {
      saw_wipeout = true;
    }
  }
  EXPECT_TRUE(saw_wipeout);
  for (SourceId dead : initial->sources) {
    EXPECT_FALSE(std::binary_search(report->final_solution.sources.begin(),
                                    report->final_solution.sources.end(),
                                    dead));
  }
  EXPECT_GT(report->final_solution.quality, 0.0);
}

// The baseline policy re-solves from scratch on every batch and never runs
// a repair — the churn_sweep bench compares the live mode against this.
TEST(ContinuousTest, FullEverytimeBaselineNeverRepairs) {
  Universe universe = MediumUniverse();
  ChurnTrace trace = BusyTrace(universe, 33);
  Engine engine(std::move(universe), QualityModel::MakeDefault());
  ContinuousOptions options = QuickContinuous();
  options.mode = ContinuousOptions::Mode::kFullEverytime;
  Result<ContinuousReport> report =
      engine.RunContinuous(BasicSpec(), trace, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->repairs, 0);
  EXPECT_EQ(report->escalations, 0);
  EXPECT_EQ(report->full_solves, 1 + static_cast<int>(report->steps.size()));
  for (const ContinuousStep& step : report->steps) {
    EXPECT_TRUE(step.escalated);
    EXPECT_EQ(step.escalation_reason, EscalationReason::kBaseline);
    EXPECT_EQ(step.repair_budget, 0);
  }
}

TEST(ContinuousTest, RejectsBadOptions) {
  Engine engine(MediumUniverse(), QualityModel::MakeDefault());
  ContinuousOptions options = QuickContinuous();
  options.batch_ms = 0.0;
  EXPECT_FALSE(engine.RunContinuous(BasicSpec(), ChurnTrace{}, options).ok());
  options = QuickContinuous();
  options.escalation_fraction = 1.5;
  EXPECT_FALSE(engine.RunContinuous(BasicSpec(), ChurnTrace{}, options).ok());
}

// --- RepairIncumbent unit tests ----------------------------------------

TEST(RepairUnitTest, EvictsBannedMembersAndImproves) {
  Universe universe = MediumUniverse(16);
  SimilarityGraph graph(universe, MakeDefaultSimilarity(), 0.25);
  ClusterMatcher matcher(universe, graph);
  QualityModel model = QualityModel::MakeDefault();
  ProblemSpec spec;
  spec.max_sources = 5;
  spec.banned_sources = {1, 2};
  ASSERT_TRUE(CandidateEvaluator::ValidateSpec(universe, spec).ok());
  CandidateEvaluator evaluator(universe, matcher, model, spec);

  const std::vector<SourceId> incumbent = {1, 2, 3, 4, 5};
  RepairOptions options;
  RepairResult result = RepairIncumbent(evaluator, incumbent, options);
  ASSERT_TRUE(result.seeded);
  EXPECT_EQ(result.evicted, 2);
  EXPECT_GE(result.solution.quality, result.seed_quality);
  EXPECT_EQ(result.solution.stats.solver_name, "repair");
  for (SourceId banned : spec.banned_sources) {
    EXPECT_FALSE(std::binary_search(result.solution.sources.begin(),
                                    result.solution.sources.end(), banned));
  }
}

TEST(RepairUnitTest, WholeIncumbentEvictedMeansNotSeeded) {
  Universe universe = MediumUniverse(16);
  SimilarityGraph graph(universe, MakeDefaultSimilarity(), 0.25);
  ClusterMatcher matcher(universe, graph);
  QualityModel model = QualityModel::MakeDefault();
  ProblemSpec spec;
  spec.max_sources = 5;
  spec.banned_sources = {1, 2};
  CandidateEvaluator evaluator(universe, matcher, model, spec);

  RepairResult result = RepairIncumbent(evaluator, {1, 2}, RepairOptions());
  EXPECT_FALSE(result.seeded);
  EXPECT_EQ(result.evicted, 2);
}

TEST(RepairUnitTest, ReAddsRequiredAndClampsToM) {
  Universe universe = MediumUniverse(16);
  SimilarityGraph graph(universe, MakeDefaultSimilarity(), 0.25);
  ClusterMatcher matcher(universe, graph);
  QualityModel model = QualityModel::MakeDefault();
  ProblemSpec spec;
  spec.max_sources = 3;
  spec.source_constraints = {0};
  CandidateEvaluator evaluator(universe, matcher, model, spec);

  // Oversized and missing the required source.
  RepairResult result =
      RepairIncumbent(evaluator, {3, 4, 5, 6, 7}, RepairOptions());
  ASSERT_TRUE(result.seeded);
  EXPECT_LE(static_cast<int>(result.solution.sources.size()),
            spec.max_sources);
  EXPECT_TRUE(std::binary_search(result.solution.sources.begin(),
                                 result.solution.sources.end(), SourceId{0}));
}

TEST(RepairUnitTest, DeterministicAcrossThreadCounts) {
  Universe universe = MediumUniverse(16);
  SimilarityGraph graph(universe, MakeDefaultSimilarity(), 0.25);
  ClusterMatcher matcher(universe, graph);
  QualityModel model = QualityModel::MakeDefault();
  ProblemSpec spec;
  spec.max_sources = 5;
  CandidateEvaluator evaluator(universe, matcher, model, spec);

  RepairOptions one;
  one.num_threads = 1;
  RepairOptions four = one;
  four.num_threads = 4;
  RepairResult a = RepairIncumbent(evaluator, {0, 3, 8}, one);
  RepairResult b = RepairIncumbent(evaluator, {0, 3, 8}, four);
  ASSERT_TRUE(a.seeded);
  ASSERT_TRUE(b.seeded);
  EXPECT_EQ(a.solution.sources, b.solution.sources);
  EXPECT_EQ(a.solution.quality, b.solution.quality);
  EXPECT_EQ(a.solution.stats.evaluations, b.solution.stats.evaluations);
  EXPECT_EQ(a.seed_quality, b.seed_quality);
}

TEST(RepairBudgetControllerTest, ClampsBaseAndDoublesOnEscalation) {
  AdaptiveRepairOptions adaptive;
  adaptive.min_eval_budget = 256;
  adaptive.max_eval_budget = 4'096;
  RepairBudgetController controller(64, adaptive);  // below min -> clamped
  EXPECT_EQ(controller.budget(), 256);

  controller.Record(/*evaluations_used=*/256, /*repaired=*/true,
                    /*quality_escalated=*/true, /*wipeout=*/false);
  EXPECT_EQ(controller.budget(), 512);
  controller.Record(512, true, true, false);
  EXPECT_EQ(controller.budget(), 1'024);
  controller.Record(1'024, true, true, false);
  controller.Record(2'048, true, true, false);
  controller.Record(4'096, true, true, false);
  EXPECT_EQ(controller.budget(), 4'096);  // capped at max
}

TEST(RepairBudgetControllerTest, ShrinksAfterConsecutiveCheapSuccesses) {
  AdaptiveRepairOptions adaptive;
  adaptive.min_eval_budget = 256;
  adaptive.max_eval_budget = 16'384;
  adaptive.shrink_after = 3;
  RepairBudgetController controller(4'096, adaptive);
  // Cheap: evaluations * 2 <= budget. Two cheap batches are not enough.
  controller.Record(100, true, false, false);
  controller.Record(100, true, false, false);
  EXPECT_EQ(controller.budget(), 4'096);
  controller.Record(100, true, false, false);  // third -> shrink by 1/4
  EXPECT_EQ(controller.budget(), 3'072);
  // A wipeout resets the streak without touching the budget.
  controller.Record(100, false, false, true);
  EXPECT_EQ(controller.budget(), 3'072);
  controller.Record(100, true, false, false);
  controller.Record(100, true, false, false);
  EXPECT_EQ(controller.budget(), 3'072);  // streak restarted after wipeout
}

TEST(RepairBudgetControllerTest, SustainedEscalationPressurePinsAtMax) {
  AdaptiveRepairOptions adaptive;
  adaptive.min_eval_budget = 256;
  adaptive.max_eval_budget = 8'192;
  adaptive.window = 4;
  RepairBudgetController controller(256, adaptive);
  // Alternate escalated / cheap so doubling alone would not reach max, but
  // half the trailing window escalated -> pinned at max.
  controller.Record(256, true, true, false);
  controller.Record(64, true, false, false);
  controller.Record(512, true, true, false);
  controller.Record(64, true, false, false);
  EXPECT_EQ(controller.budget(), 8'192);
  EXPECT_EQ(controller.ring().total(), 4);
}

TEST(ContinuousTest, FormatContinuousReportRendersReasons) {
  Universe universe = MediumUniverse(16);
  ChurnFeedConfig feed;
  feed.seed = 99;
  feed.events_per_sec = 2.0;
  feed.horizon_ms = 10'000.0;
  feed.attr_rename_weight = 4.0;
  feed.attr_add_weight = 2.0;
  feed.attr_drop_weight = 2.0;
  ChurnTrace trace = GenerateChurnTrace(universe, feed).value();
  Engine engine(std::move(universe), QualityModel::MakeDefault());
  Result<ContinuousReport> report =
      engine.RunContinuous(BasicSpec(), trace, QuickContinuous());
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string text = FormatContinuousReport(*report);
  EXPECT_NE(text.find("continuous: "), std::string::npos);
  EXPECT_NE(text.find("schema drift"), std::string::npos);
  EXPECT_NE(text.find("escalation reasons:"), std::string::npos);
  // Every batch line renders, with budget when the batch was repaired.
  size_t batches = 0;
  for (size_t at = text.find("  batch "); at != std::string::npos;
       at = text.find("  batch ", at + 1)) {
    ++batches;
  }
  EXPECT_EQ(batches, report->steps.size());
}

}  // namespace
}  // namespace ube
