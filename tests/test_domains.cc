#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/domains.h"
#include "workload/generator.h"

namespace ube {
namespace {

// ------------------------------ domains ---------------------------------

TEST(DomainsTest, FourBammDomains) {
  const std::vector<DomainSpec>& domains = BammDomains();
  ASSERT_EQ(domains.size(), 4u);
  EXPECT_EQ(domains[0].name, "books");
  EXPECT_EQ(domains[1].name, "airfares");
  EXPECT_EQ(domains[2].name, "movies");
  EXPECT_EQ(domains[3].name, "musicrecords");
  EXPECT_EQ(domains[0].concepts.size(), 14u);  // the paper's ground truth
  for (const DomainSpec& spec : domains) {
    EXPECT_GE(spec.concepts.size(), 8u);
    EXPECT_EQ(spec.concepts.size(), spec.popularity.size());
  }
}

TEST(DomainsTest, FindDomain) {
  EXPECT_EQ(FindDomain("books"), 0);
  EXPECT_EQ(FindDomain("airfares"), 1);
  EXPECT_EQ(FindDomain("movies"), 2);
  EXPECT_EQ(FindDomain("musicrecords"), 3);
  EXPECT_EQ(FindDomain("theater"), -1);
}

TEST(DomainsTest, VariantsUniqueAcrossAllDomains) {
  // Mixed-domain ground truth requires globally unambiguous variant names.
  std::set<std::string> all;
  for (const DomainSpec& spec : BammDomains()) {
    for (const DomainConcept& concept_def : spec.concepts) {
      for (const std::string& variant : concept_def.variants) {
        EXPECT_TRUE(all.insert(variant).second)
            << "variant reused across domains: " << variant;
      }
    }
  }
}

TEST(DomainsTest, UnrelatedWordsDisjointFromAllVariants) {
  // Noise names are pairs of unrelated words; no single unrelated word may
  // appear in any domain variant, or noise could shadow a concept.
  std::set<std::string> variant_words;
  for (const DomainSpec& spec : BammDomains()) {
    for (const DomainConcept& concept_def : spec.concepts) {
      for (const std::string& variant : concept_def.variants) {
        size_t start = 0;
        while (start < variant.size()) {
          size_t space = variant.find(' ', start);
          if (space == std::string::npos) space = variant.size();
          variant_words.insert(variant.substr(start, space - start));
          start = space + 1;
        }
      }
    }
  }
  for (const std::string& word : SchemaRepository::UnrelatedWords()) {
    EXPECT_FALSE(variant_words.contains(word))
        << "unrelated word collides with a variant word: " << word;
  }
}

TEST(DomainsTest, BooksRepositoryIsDomainZero) {
  BooksRepository books;
  const DomainSpec& spec = BammDomains()[0];
  ASSERT_EQ(books.num_concepts(), static_cast<int>(spec.concepts.size()));
  for (int c = 0; c < books.num_concepts(); ++c) {
    EXPECT_EQ(books.concepts()[c].name, spec.concepts[c].name);
  }
  EXPECT_EQ(books.domain_name(), "books");
}

TEST(SchemaRepositoryTest, DeterministicForSameInputs) {
  const DomainSpec& spec = BammDomains()[1];
  SchemaRepository a(spec.name, spec.concepts, spec.popularity, 30, 99);
  SchemaRepository b(spec.name, spec.concepts, spec.popularity, 30, 99);
  ASSERT_EQ(a.num_base_schemas(), 30);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(a.base_schemas()[i], b.base_schemas()[i]);
  }
}

TEST(SchemaRepositoryTest, DifferentSeedsDiffer) {
  const DomainSpec& spec = BammDomains()[2];
  SchemaRepository a(spec.name, spec.concepts, spec.popularity, 30, 1);
  SchemaRepository b(spec.name, spec.concepts, spec.popularity, 30, 2);
  int differing = 0;
  for (int i = 0; i < 30; ++i) {
    if (!(a.base_schemas()[i] == b.base_schemas()[i])) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// --------------------------- mixed workloads -----------------------------

MixedWorkloadConfig SmallMix() {
  MixedWorkloadConfig config;
  config.base.num_sources = 120;
  config.base.seed = 5;
  config.base.scale = 0.001;
  config.mix = {{FindDomain("books"), 0.5},
                {FindDomain("airfares"), 0.25},
                {FindDomain("movies"), 0.25}};
  return config;
}

TEST(MixedWorkloadTest, CountsFollowFractions) {
  Result<MixedWorkload> workload = GenerateMixedWorkload(SmallMix());
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->universe.num_sources(), 120);
  EXPECT_EQ(workload->domain_of.size(), 120u);
  EXPECT_EQ(workload->domain_counts[0], 60);   // books
  EXPECT_EQ(workload->domain_counts[1], 30);   // airfares
  EXPECT_EQ(workload->domain_counts[2], 30);   // movies
  EXPECT_EQ(workload->domain_counts[3], 0);    // musicrecords absent
}

TEST(MixedWorkloadTest, SourceNamesCarryDomain) {
  Result<MixedWorkload> workload = GenerateMixedWorkload(SmallMix());
  ASSERT_TRUE(workload.ok());
  for (SourceId s = 0; s < workload->universe.num_sources(); ++s) {
    int domain = workload->domain_of[static_cast<size_t>(s)];
    const std::string& name = workload->universe.source(s).name();
    EXPECT_EQ(name.rfind(BammDomains()[static_cast<size_t>(domain)].name, 0),
              0u)
        << name;
  }
}

TEST(MixedWorkloadTest, GroundTruthUsesGlobalConceptIds) {
  Result<MixedWorkload> workload = GenerateMixedWorkload(SmallMix());
  ASSERT_TRUE(workload.ok());
  const GroundTruth& truth = workload->ground_truth;
  // 14 + 10 + 10 + 9 concepts across the four domains.
  EXPECT_EQ(truth.num_concepts(), 43);
  EXPECT_EQ(truth.concept_name(0), "books/title");
  EXPECT_EQ(truth.concept_name(workload->concept_offset[1]),
            "airfares/from");
  // Every non-noise attribute's concept lies in its source's domain block.
  for (SourceId s = 0; s < workload->universe.num_sources(); ++s) {
    int domain = workload->domain_of[static_cast<size_t>(s)];
    int lo = workload->concept_offset[static_cast<size_t>(domain)];
    int hi = lo + static_cast<int>(
                      BammDomains()[static_cast<size_t>(domain)]
                          .concepts.size());
    const SourceSchema& schema = workload->universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      int c = truth.ConceptOf(AttributeId{s, a});
      if (c < 0) continue;
      EXPECT_GE(c, lo);
      EXPECT_LT(c, hi);
    }
  }
}

TEST(MixedWorkloadTest, DomainsHaveDisjointTuplePools) {
  MixedWorkloadConfig config = SmallMix();
  config.base.signature_kind = SignatureKind::kExact;
  Result<MixedWorkload> workload = GenerateMixedWorkload(config);
  ASSERT_TRUE(workload.ok());
  // Union estimate of a books source and an airfares source must equal the
  // sum of their distinct counts (disjoint pools).
  SourceId books_src = -1, air_src = -1;
  for (SourceId s = 0; s < workload->universe.num_sources(); ++s) {
    if (workload->domain_of[static_cast<size_t>(s)] == 0 && books_src < 0) {
      books_src = s;
    }
    if (workload->domain_of[static_cast<size_t>(s)] == 1 && air_src < 0) {
      air_src = s;
    }
  }
  ASSERT_GE(books_src, 0);
  ASSERT_GE(air_src, 0);
  auto merged = workload->universe.source(books_src).signature().Clone();
  merged->MergeFrom(workload->universe.source(air_src).signature());
  EXPECT_DOUBLE_EQ(
      merged->Estimate(),
      workload->universe.source(books_src).signature().Estimate() +
          workload->universe.source(air_src).signature().Estimate());
}

TEST(MixedWorkloadTest, Deterministic) {
  Result<MixedWorkload> a = GenerateMixedWorkload(SmallMix());
  Result<MixedWorkload> b = GenerateMixedWorkload(SmallMix());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (SourceId s = 0; s < a->universe.num_sources(); ++s) {
    EXPECT_EQ(a->universe.source(s).schema(), b->universe.source(s).schema());
    EXPECT_EQ(a->universe.source(s).cardinality(),
              b->universe.source(s).cardinality());
  }
}

TEST(MixedWorkloadTest, ValidationErrors) {
  MixedWorkloadConfig config = SmallMix();
  config.mix.clear();
  EXPECT_FALSE(GenerateMixedWorkload(config).ok());

  config = SmallMix();
  config.mix[0].domain = 99;
  EXPECT_FALSE(GenerateMixedWorkload(config).ok());

  config = SmallMix();
  config.mix[0].fraction = -1.0;
  EXPECT_FALSE(GenerateMixedWorkload(config).ok());

  config = SmallMix();
  config.mix.push_back({FindDomain("books"), 0.1});  // duplicate domain
  EXPECT_FALSE(GenerateMixedWorkload(config).ok());

  config = SmallMix();
  config.schemas_per_domain = 0;
  EXPECT_FALSE(GenerateMixedWorkload(config).ok());
}

// End-to-end: with a matching-heavy quality model, µBE selects a
// domain-coherent subset out of a polluted universe — the paper's core
// motivation (Section 1).
TEST(MixedWorkloadTest, SelectionPrefersCoherentDomain) {
  MixedWorkloadConfig config;
  config.base.num_sources = 90;
  config.base.seed = 11;
  config.base.scale = 0.001;
  config.mix = {{FindDomain("books"), 0.5},
                {FindDomain("airfares"), 0.5}};
  Result<MixedWorkload> workload = GenerateMixedWorkload(config);
  ASSERT_TRUE(workload.ok());
  std::vector<int> domain_of = workload->domain_of;

  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), 0.8);
  model.AddQef(std::make_unique<CardinalityQef>(), 0.2);
  Engine engine(std::move(workload->universe), std::move(model));
  ProblemSpec spec;
  spec.max_sources = 10;
  SolverOptions options;
  options.seed = 4;
  options.max_iterations = 250;
  options.stall_iterations = 60;
  Result<Solution> solution = engine.Solve(spec, SolverKind::kTabu, options);
  ASSERT_TRUE(solution.ok());

  int counts[2] = {0, 0};
  for (SourceId s : solution->sources) {
    ++counts[domain_of[static_cast<size_t>(s)] == 0 ? 0 : 1];
  }
  // A coherent majority domain should dominate the selection (matching
  // quality rewards same-domain attribute overlap).
  int majority = std::max(counts[0], counts[1]);
  EXPECT_GE(majority, 8) << "books=" << counts[0]
                         << " airfares=" << counts[1];
}

}  // namespace
}  // namespace ube
