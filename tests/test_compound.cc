#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "sketch/distinct_estimator.h"
#include "source/compound.h"
#include "source/universe.h"

namespace ube {
namespace {

Universe MakeUniverse(const std::vector<std::vector<std::string>>& schemas) {
  Universe u;
  for (size_t i = 0; i < schemas.size(); ++i) {
    u.AddSource(DataSource("src-" + std::to_string(i),
                           SourceSchema(schemas[i])));
  }
  return u;
}

TEST(CompoundTest, EmptyGroupsIsIdentity) {
  Universe original = MakeUniverse({{"a", "b"}, {"c"}});
  auto result = BuildCompoundUniverse(original, {});
  ASSERT_TRUE(result.ok());
  const auto& [derived, mapping] = *result;
  ASSERT_EQ(derived.num_sources(), 2);
  EXPECT_EQ(derived.source(0).schema(), original.source(0).schema());
  EXPECT_EQ(mapping.DerivedOf(AttributeId{0, 1}).value(), (AttributeId{0, 1}));
  EXPECT_EQ(mapping.OriginalsOf(AttributeId{0, 1}).value(),
            (std::vector<AttributeId>{AttributeId{0, 1}}));
  EXPECT_FALSE(mapping.IsCompound(AttributeId{0, 0}).value());
}

TEST(CompoundTest, FusesGroupAtFirstMemberPosition) {
  Universe original =
      MakeUniverse({{"first name", "age", "last name", "city"}});
  CompoundGroup group;
  group.source = 0;
  group.attr_indices = {2, 0};  // order-insensitive
  auto result = BuildCompoundUniverse(original, {group});
  ASSERT_TRUE(result.ok());
  const auto& [derived, mapping] = *result;
  // Derived schema: compound at position of "first name", then age, city.
  EXPECT_EQ(derived.source(0).schema().names(),
            (std::vector<std::string>{"first name last name", "age",
                                      "city"}));
  EXPECT_TRUE(mapping.IsCompound(AttributeId{0, 0}).value());
  EXPECT_EQ(mapping.OriginalsOf(AttributeId{0, 0}).value(),
            (std::vector<AttributeId>{AttributeId{0, 0}, AttributeId{0, 2}}));
  EXPECT_EQ(mapping.DerivedOf(AttributeId{0, 0}).value(), (AttributeId{0, 0}));
  EXPECT_EQ(mapping.DerivedOf(AttributeId{0, 2}).value(), (AttributeId{0, 0}));
  EXPECT_EQ(mapping.DerivedOf(AttributeId{0, 1}).value(), (AttributeId{0, 1}));
  EXPECT_EQ(mapping.DerivedOf(AttributeId{0, 3}).value(), (AttributeId{0, 2}));
}

TEST(CompoundTest, OutOfRangeIdsReportInsteadOfAborting) {
  Universe original = MakeUniverse({{"a", "b"}});
  auto result = BuildCompoundUniverse(original, {});
  ASSERT_TRUE(result.ok());
  const auto& mapping = result->second;
  EXPECT_EQ(mapping.OriginalsOf(AttributeId{5, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mapping.OriginalsOf(AttributeId{0, 9}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mapping.DerivedOf(AttributeId{-1, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mapping.IsCompound(AttributeId{0, -3}).status().code(),
            StatusCode::kInvalidArgument);
  GlobalAttribute bad_ga({AttributeId{0, 0}, AttributeId{7, 7}});
  EXPECT_EQ(mapping.ExpandGa(bad_ga).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompoundTest, CustomName) {
  Universe original = MakeUniverse({{"first", "last"}});
  CompoundGroup group;
  group.source = 0;
  group.attr_indices = {0, 1};
  group.name = "full name";
  auto result = BuildCompoundUniverse(original, {group});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->first.source(0).schema().attribute_name(0), "full name");
}

TEST(CompoundTest, CarriesDataAndCharacteristics) {
  Universe original;
  DataSource source("s", SourceSchema({"a", "b"}));
  source.set_cardinality(123);
  source.SetCharacteristic("mttf", 9.5);
  auto sig = std::make_unique<ExactSignature>();
  sig->Add(1);
  sig->Add(2);
  source.set_signature(std::move(sig));
  original.AddSource(std::move(source));

  CompoundGroup group;
  group.source = 0;
  group.attr_indices = {0, 1};
  auto result = BuildCompoundUniverse(original, {group});
  ASSERT_TRUE(result.ok());
  const DataSource& derived = result->first.source(0);
  EXPECT_EQ(derived.cardinality(), 123);
  EXPECT_EQ(derived.GetCharacteristic("mttf"), 9.5);
  ASSERT_TRUE(derived.has_signature());
  EXPECT_DOUBLE_EQ(derived.signature().Estimate(), 2.0);
}

TEST(CompoundTest, ValidationErrors) {
  Universe original = MakeUniverse({{"a", "b", "c"}});
  CompoundGroup bad_source;
  bad_source.source = 5;
  bad_source.attr_indices = {0, 1};
  EXPECT_FALSE(BuildCompoundUniverse(original, {bad_source}).ok());

  CompoundGroup too_small;
  too_small.source = 0;
  too_small.attr_indices = {0};
  EXPECT_FALSE(BuildCompoundUniverse(original, {too_small}).ok());

  CompoundGroup duplicate_index;
  duplicate_index.source = 0;
  duplicate_index.attr_indices = {1, 1};
  EXPECT_FALSE(BuildCompoundUniverse(original, {duplicate_index}).ok());

  CompoundGroup out_of_range;
  out_of_range.source = 0;
  out_of_range.attr_indices = {0, 9};
  EXPECT_FALSE(BuildCompoundUniverse(original, {out_of_range}).ok());

  CompoundGroup g1;
  g1.source = 0;
  g1.attr_indices = {0, 1};
  CompoundGroup g2;
  g2.source = 0;
  g2.attr_indices = {1, 2};  // overlaps g1
  EXPECT_FALSE(BuildCompoundUniverse(original, {g1, g2}).ok());
}

// The n:m scenario from Section 2.1: source 0 splits a name into two
// fields, source 1 has one "full name" field. Fusing source 0's fields
// lets the matcher express the 2:1 correspondence as a 1:1 match.
TEST(CompoundTest, EnablesNtoMMatching) {
  Universe scenario = MakeUniverse(
      {{"customer full", "name"},    // the concept split into two fragments
       {"customer full name"}});     // the same concept as one field

  // Without compounds neither fragment reaches θ on its own
  // (J("customer full", "customer full name") ≈ 0.59).
  SimilarityGraph flat_graph = SimilarityGraph::WithDefaults(scenario, 0.25);
  ClusterMatcher flat_matcher(scenario, flat_graph);
  MatchOptions options;
  options.theta = 0.8;
  Result<MatchResult> flat = flat_matcher.Match({0, 1}, {}, {}, options);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->schema.num_gas(), 0);  // no 1:1 match at this θ

  // With a compound over source 0's two fragments, the derived attribute
  // "customer full name" matches source 1's field exactly.
  CompoundGroup group;
  group.source = 0;
  group.attr_indices = {0, 1};
  auto derived = BuildCompoundUniverse(scenario, {group});
  ASSERT_TRUE(derived.ok());
  auto& [compound_universe, mapping] = *derived;
  SimilarityGraph graph = SimilarityGraph::WithDefaults(compound_universe,
                                                        0.25);
  ClusterMatcher matcher(compound_universe, graph);
  Result<MatchResult> fused = matcher.Match({0, 1}, {}, {}, options);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused->schema.num_gas(), 1);

  // Expanding the derived GA yields the n:m match over original ids:
  // both fragments of source 0 plus source 1's single attribute.
  Result<std::vector<AttributeId>> expanded =
      mapping.ExpandGa(fused->schema.ga(0));
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded.value(),
            (std::vector<AttributeId>{AttributeId{0, 0}, AttributeId{0, 1},
                                      AttributeId{1, 0}}));
  // ExpandSchema covers the whole mediated schema.
  auto all = mapping.ExpandSchema(fused->schema);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0], expanded.value());
}

}  // namespace
}  // namespace ube
