#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "sketch/distinct_estimator.h"
#include "workload/generator.h"

namespace ube {
namespace {

constexpr char kBasicCatalog[] = R"(# demo catalog
[source]
name        = megabooks.com
attributes  = title | author | isbn
cardinality = 60000
char.mttf   = 120
char.latency_ms = 85.5

[source]
name = rarereads.com    # trailing comment
attributes = title | condition
cardinality = 3000
signature = exact:1,2,3,42
)";

TEST(CatalogParseTest, BasicCatalog) {
  Result<Universe> universe = ParseCatalog(kBasicCatalog);
  ASSERT_TRUE(universe.ok()) << universe.status();
  ASSERT_EQ(universe->num_sources(), 2);

  const DataSource& mega = universe->source(0);
  EXPECT_EQ(mega.name(), "megabooks.com");
  EXPECT_EQ(mega.schema().names(),
            (std::vector<std::string>{"title", "author", "isbn"}));
  EXPECT_EQ(mega.cardinality(), 60000);
  EXPECT_EQ(mega.GetCharacteristic("mttf"), 120.0);
  EXPECT_EQ(mega.GetCharacteristic("latency_ms"), 85.5);
  EXPECT_FALSE(mega.has_signature());

  const DataSource& rare = universe->source(1);
  EXPECT_EQ(rare.name(), "rarereads.com");
  ASSERT_TRUE(rare.has_signature());
  EXPECT_DOUBLE_EQ(rare.signature().Estimate(), 4.0);
}

TEST(CatalogParseTest, EmptyCatalogIsEmptyUniverse) {
  Result<Universe> universe = ParseCatalog("");
  ASSERT_TRUE(universe.ok());
  EXPECT_EQ(universe->num_sources(), 0);
  universe = ParseCatalog("# only comments\n\n   \n");
  ASSERT_TRUE(universe.ok());
  EXPECT_EQ(universe->num_sources(), 0);
}

TEST(CatalogParseTest, PcsaSignatureRoundTrips) {
  PcsaSketch sketch(64);
  for (uint64_t i = 0; i < 5000; ++i) sketch.AddHash(i * 977);
  Universe original;
  DataSource source("s", SourceSchema({"a"}));
  source.set_cardinality(5000);
  source.set_signature(std::make_unique<PcsaSignature>(sketch));
  original.AddSource(std::move(source));

  Result<Universe> parsed = ParseCatalog(WriteCatalog(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_sources(), 1);
  ASSERT_TRUE(parsed->source(0).has_signature());
  const auto* pcsa =
      dynamic_cast<const PcsaSignature*>(&parsed->source(0).signature());
  ASSERT_NE(pcsa, nullptr);
  EXPECT_EQ(pcsa->sketch(), sketch);  // bit-exact round trip
}

TEST(CatalogParseTest, GeneratedWorkloadRoundTrips) {
  WorkloadConfig config;
  config.num_sources = 25;
  config.scale = 0.001;
  GeneratedWorkload workload = GenerateWorkload(config);
  std::string text = WriteCatalog(workload.universe);

  Result<Universe> parsed = ParseCatalog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_sources(), workload.universe.num_sources());
  for (SourceId s = 0; s < parsed->num_sources(); ++s) {
    const DataSource& a = workload.universe.source(s);
    const DataSource& b = parsed->source(s);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.schema(), b.schema());
    EXPECT_EQ(a.cardinality(), b.cardinality());
    EXPECT_EQ(a.GetCharacteristic("mttf"), b.GetCharacteristic("mttf"));
    ASSERT_EQ(a.has_signature(), b.has_signature());
    if (a.has_signature()) {
      EXPECT_DOUBLE_EQ(a.signature().Estimate(), b.signature().Estimate());
    }
  }
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(WriteCatalog(*parsed), text);
}

TEST(CatalogParseTest, ExactSignatureRoundTripsSorted) {
  Universe original;
  DataSource source("s", SourceSchema({"a"}));
  auto sig = std::make_unique<ExactSignature>();
  sig->Add(99);
  sig->Add(7);
  sig->Add(13);
  source.set_signature(std::move(sig));
  original.AddSource(std::move(source));
  std::string text = WriteCatalog(original);
  EXPECT_NE(text.find("exact:7,13,99"), std::string::npos);
  Result<Universe> parsed = ParseCatalog(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->source(0).signature().Estimate(), 3.0);
}

struct BadCatalogCase {
  const char* label;
  const char* text;
  const char* expected_substring;
};

class CatalogErrorTest : public ::testing::TestWithParam<BadCatalogCase> {};

TEST_P(CatalogErrorTest, RejectsWithDiagnostics) {
  const BadCatalogCase& c = GetParam();
  Result<Universe> universe = ParseCatalog(c.text);
  ASSERT_FALSE(universe.ok()) << c.label;
  EXPECT_EQ(universe.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(universe.status().message().find(c.expected_substring),
            std::string::npos)
      << c.label << ": " << universe.status().message();
  // Every parse error names a line number.
  EXPECT_NE(universe.status().message().find("line"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CatalogErrorTest,
    ::testing::Values(
        BadCatalogCase{"content_before_block", "name = x\n",
                       "before the first"},
        BadCatalogCase{"unknown_section", "[sauce]\n", "unknown section"},
        BadCatalogCase{"missing_name",
                       "[source]\nattributes = a\n", "missing 'name'"},
        BadCatalogCase{"missing_attributes",
                       "[source]\nname = x\n", "missing 'attributes'"},
        BadCatalogCase{"empty_attributes",
                       "[source]\nname = x\nattributes =  | \n",
                       "at least one"},
        BadCatalogCase{"duplicate_name",
                       "[source]\nname = x\nname = y\nattributes = a\n",
                       "duplicate 'name'"},
        BadCatalogCase{"bad_cardinality",
                       "[source]\nname = x\nattributes = a\n"
                       "cardinality = -5\n",
                       "non-negative"},
        BadCatalogCase{"non_numeric_cardinality",
                       "[source]\nname = x\nattributes = a\n"
                       "cardinality = many\n",
                       "non-negative"},
        BadCatalogCase{"bad_characteristic",
                       "[source]\nname = x\nattributes = a\n"
                       "char.mttf = fast\n",
                       "must be a number"},
        BadCatalogCase{"empty_characteristic_name",
                       "[source]\nname = x\nattributes = a\nchar. = 1\n",
                       "characteristic name missing"},
        BadCatalogCase{"unknown_key",
                       "[source]\nname = x\nattributes = a\ncolour = red\n",
                       "unknown key"},
        BadCatalogCase{"missing_equals",
                       "[source]\nname = x\nattributes = a\njunk line\n",
                       "key = value"},
        BadCatalogCase{"bad_signature_kind",
                       "[source]\nname = x\nattributes = a\n"
                       "signature = bloom:64:00\n",
                       "unknown signature kind"},
        BadCatalogCase{"bad_pcsa_bitmaps",
                       "[source]\nname = x\nattributes = a\n"
                       "signature = pcsa:63:00000000\n",
                       "power of two"},
        BadCatalogCase{"bad_pcsa_hex",
                       "[source]\nname = x\nattributes = a\n"
                       "signature = pcsa:1:zzzzzzzz\n",
                       "malformed pcsa hex"},
        BadCatalogCase{"pcsa_length_mismatch",
                       "[source]\nname = x\nattributes = a\n"
                       "signature = pcsa:2:00000000\n",
                       "does not match"},
        BadCatalogCase{"bad_exact_id",
                       "[source]\nname = x\nattributes = a\n"
                       "signature = exact:1,two\n",
                       "malformed exact"}),
    [](const ::testing::TestParamInfo<BadCatalogCase>& info) {
      return info.param.label;
    });

TEST(CatalogErrorTest, ErrorReportsCorrectLineNumber) {
  Result<Universe> universe =
      ParseCatalog("[source]\nname = x\nattributes = a\n\nbroken\n");
  ASSERT_FALSE(universe.ok());
  EXPECT_NE(universe.status().message().find("line 5"), std::string::npos);
}

TEST(CatalogStateTest, FreshSourceEmitsNoStateKey) {
  Universe universe;
  universe.AddSource(DataSource("s", SourceSchema({"a"})));
  EXPECT_EQ(WriteCatalog(universe).find("state"), std::string::npos);
}

TEST(CatalogStateTest, StateRoundTripsEveryCombination) {
  Universe original;
  {
    DataSource dropped("gone.com", SourceSchema());
    dropped.set_available(false);
    dropped.set_stats_state(StatsState::kMissing);
    original.AddSource(std::move(dropped));
  }
  {
    DataSource stale("stale.com", SourceSchema({"title", "author"}));
    stale.set_cardinality(123);
    stale.set_stats_state(StatsState::kStale, 0.375);
    original.AddSource(std::move(stale));
  }
  {
    DataSource partial("partial.com", SourceSchema({"title"}));
    partial.set_stats_state(StatsState::kPartial);
    original.AddSource(std::move(partial));
  }
  {
    DataSource fresh("fresh.com", SourceSchema({"isbn"}));
    original.AddSource(std::move(fresh));
  }

  std::string text = WriteCatalog(original);
  Result<Universe> parsed = ParseCatalog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_sources(), 4);
  for (SourceId s = 0; s < 4; ++s) {
    const DataSource& a = original.source(s);
    const DataSource& b = parsed->source(s);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.schema(), b.schema());
    EXPECT_EQ(a.available(), b.available()) << a.name();
    EXPECT_EQ(a.stats_state(), b.stats_state()) << a.name();
    EXPECT_EQ(a.staleness(), b.staleness()) << a.name();  // bit-exact %.17g
  }
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(WriteCatalog(*parsed), text);
}

TEST(CatalogStateTest, DroppedShellMayOmitAttributes) {
  Result<Universe> parsed = ParseCatalog(
      "[source]\nname = ghost\ncardinality = 0\nstate = dropped,missing\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_sources(), 1);
  EXPECT_FALSE(parsed->source(0).available());
  EXPECT_EQ(parsed->source(0).stats_state(), StatsState::kMissing);
  EXPECT_TRUE(parsed->source(0).schema().names().empty());
}

TEST(CatalogStateTest, ExplicitFreshTokenAccepted) {
  Result<Universe> parsed =
      ParseCatalog("[source]\nname = x\nattributes = a\nstate = fresh\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->source(0).stats_fresh());
}

INSTANTIATE_TEST_SUITE_P(
    StateCases, CatalogErrorTest,
    ::testing::Values(
        BadCatalogCase{"unknown_state_token",
                       "[source]\nname = x\nattributes = a\nstate = zombie\n",
                       "unknown 'state' token"},
        BadCatalogCase{"duplicate_state_key",
                       "[source]\nname = x\nattributes = a\n"
                       "state = missing\nstate = partial\n",
                       "duplicate 'state'"},
        BadCatalogCase{"duplicate_dropped_token",
                       "[source]\nname = x\nattributes = a\n"
                       "state = dropped,dropped\n",
                       "duplicate 'dropped'"},
        BadCatalogCase{"two_stats_tokens",
                       "[source]\nname = x\nattributes = a\n"
                       "state = missing,partial\n",
                       "more than one statistics token"},
        BadCatalogCase{"empty_state",
                       "[source]\nname = x\nattributes = a\nstate =  ,\n",
                       "at least one token"},
        BadCatalogCase{"stale_out_of_range",
                       "[source]\nname = x\nattributes = a\n"
                       "state = stale:1.5\n",
                       "(0, 1]"},
        BadCatalogCase{"stale_not_numeric",
                       "[source]\nname = x\nattributes = a\n"
                       "state = stale:very\n",
                       "(0, 1]"},
        BadCatalogCase{"missing_attributes_still_errors_when_not_dropped",
                       "[source]\nname = x\nstate = missing\n",
                       "missing 'attributes'"}),
    [](const ::testing::TestParamInfo<BadCatalogCase>& info) {
      return info.param.label;
    });

TEST(CatalogFileTest, SaveAndLoadRoundTrip) {
  WorkloadConfig config;
  config.num_sources = 8;
  config.scale = 0.001;
  GeneratedWorkload workload = GenerateWorkload(config);
  std::string path = ::testing::TempDir() + "/ube_catalog_test.txt";
  ASSERT_TRUE(SaveCatalogFile(workload.universe, path).ok());
  Result<Universe> loaded = LoadCatalogFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_sources(), 8);
  std::remove(path.c_str());
}

TEST(CatalogFileTest, MissingFileIsNotFound) {
  Result<Universe> loaded = LoadCatalogFile("/no/such/file.catalog");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ube
