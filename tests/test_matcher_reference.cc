// Differential test: an independent, deliberately naive implementation of
// Algorithm 1 (quadratic similarity recomputation, no similarity graph, no
// cluster_of index, plain vectors) must produce exactly the same mediated
// schemas as the production ClusterMatcher on random instances. This
// catches data-structure bugs (adjacency maintenance, cluster indexing,
// retirement bookkeeping) that invariants alone would miss.
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "source/universe.h"
#include "text/similarity.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ube {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

struct RefCluster {
  std::vector<AttributeId> attrs;
  bool keep = false;
  bool retired = false;
  bool alive = true;
};

bool RefValidMerge(const RefCluster& a, const RefCluster& b) {
  std::set<SourceId> sources;
  for (const AttributeId& id : a.attrs) sources.insert(id.source);
  for (const AttributeId& id : b.attrs) {
    if (!sources.insert(id.source).second) return false;
  }
  return true;
}

// Max-linkage similarity between two clusters, recomputed from names.
double RefClusterSim(const Universe& universe, const AttributeSimilarity& sim,
                     const RefCluster& a, const RefCluster& b) {
  double best = 0.0;
  for (const AttributeId& x : a.attrs) {
    for (const AttributeId& y : b.attrs) {
      if (x.source == y.source) continue;  // no same-source edges
      best = std::max(
          best, sim.Score(
                    universe.source(x.source).schema().attribute_name(
                        x.attr_index),
                    universe.source(y.source).schema().attribute_name(
                        y.attr_index)));
    }
  }
  return best;
}

// Runs Algorithm 1 naively and returns the set of output GAs (attribute-id
// sets), applying the same elimination-as-retirement policy and β filter as
// the production matcher.
std::set<std::vector<AttributeId>> ReferenceMatch(
    const Universe& universe, const std::vector<SourceId>& sources,
    const std::vector<GlobalAttribute>& ga_constraints, double theta,
    int beta) {
  NgramJaccardSimilarity sim(3);
  std::vector<RefCluster> clusters;

  std::set<AttributeId> constrained;
  for (const GlobalAttribute& g : ga_constraints) {
    RefCluster c;
    c.attrs = g.attributes();
    c.keep = true;
    for (const AttributeId& id : c.attrs) constrained.insert(id);
    clusters.push_back(std::move(c));
  }
  std::vector<SourceId> sorted_sources = sources;
  std::sort(sorted_sources.begin(), sorted_sources.end());
  for (SourceId s : sorted_sources) {
    const SourceSchema& schema = universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      AttributeId id{s, a};
      if (constrained.contains(id)) continue;
      RefCluster c;
      c.attrs = {id};
      clusters.push_back(std::move(c));
    }
  }

  bool done = false;
  while (!done) {
    done = true;
    // Active cluster indices.
    std::vector<size_t> active;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].alive && !clusters[i].retired) active.push_back(i);
    }
    // All pairs with similarity >= theta, sorted by (sim desc, i, j). The
    // production code sorts by creation-order cluster ids; reference
    // clusters are created in the same order, so indices align.
    struct Pair {
      double sim;
      size_t i, j;
    };
    std::vector<Pair> pairs;
    for (size_t x = 0; x < active.size(); ++x) {
      for (size_t y = x + 1; y < active.size(); ++y) {
        double s = RefClusterSim(universe, sim, clusters[active[x]],
                                 clusters[active[y]]);
        // Production stores edge similarities as float and compares the
        // float against theta; mirror that exactly.
        if (static_cast<float>(s) >= static_cast<float>(theta) && s > 0.0) {
          pairs.push_back({s, active[x], active[y]});
        }
      }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
      // Production stores similarities as float; mirror that rounding so
      // tie-breaking agrees.
      float fa = static_cast<float>(a.sim);
      float fb = static_cast<float>(b.sim);
      if (fa != fb) return fa > fb;
      if (a.i != b.i) return a.i < b.i;
      return a.j < b.j;
    });

    std::set<size_t> merged_this_round;
    std::set<size_t> mergecand;
    std::set<size_t> newly_created;
    for (const Pair& p : pairs) {
      bool i_merged = merged_this_round.contains(p.i);
      bool j_merged = merged_this_round.contains(p.j);
      if (!i_merged && !j_merged) {
        if (!RefValidMerge(clusters[p.i], clusters[p.j])) continue;
        RefCluster merged;
        merged.attrs = clusters[p.i].attrs;
        merged.attrs.insert(merged.attrs.end(), clusters[p.j].attrs.begin(),
                            clusters[p.j].attrs.end());
        merged.keep = clusters[p.i].keep || clusters[p.j].keep;
        clusters[p.i].alive = false;
        clusters[p.j].alive = false;
        merged_this_round.insert(p.i);
        merged_this_round.insert(p.j);
        newly_created.insert(clusters.size());
        clusters.push_back(std::move(merged));
      } else if (i_merged != j_merged) {
        mergecand.insert(i_merged ? p.j : p.i);
        done = false;
      } else {
        done = false;  // both merged: possible follow-up merge next round
      }
    }
    for (size_t i = 0; i < clusters.size(); ++i) {
      RefCluster& c = clusters[i];
      if (!c.alive || c.retired) continue;
      if (newly_created.contains(i) || mergecand.contains(i) || c.keep) {
        continue;
      }
      if (c.attrs.size() >= 2) {
        c.retired = true;
      } else {
        c.alive = false;
      }
    }
  }

  std::set<std::vector<AttributeId>> out;
  for (const RefCluster& c : clusters) {
    if (!c.alive) continue;
    if (!c.keep && static_cast<int>(c.attrs.size()) < std::max(2, beta)) {
      continue;
    }
    std::vector<AttributeId> attrs = c.attrs;
    std::sort(attrs.begin(), attrs.end());
    out.insert(std::move(attrs));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Differential runs
// ---------------------------------------------------------------------------

std::set<std::vector<AttributeId>> ProductionMatch(
    const Universe& universe, const std::vector<SourceId>& sources,
    const std::vector<GlobalAttribute>& ga_constraints, double theta,
    int beta) {
  SimilarityGraph graph = SimilarityGraph::WithDefaults(universe, 0.25);
  ClusterMatcher matcher(universe, graph);
  MatchOptions options;
  options.theta = theta;
  options.beta = beta;
  Result<MatchResult> result =
      matcher.Match(sources, {}, ga_constraints, options);
  EXPECT_TRUE(result.ok()) << result.status();
  std::set<std::vector<AttributeId>> out;
  for (const GlobalAttribute& ga : result->schema.gas()) {
    out.insert(ga.attributes());
  }
  return out;
}

std::string Describe(const std::set<std::vector<AttributeId>>& schema) {
  std::string out;
  for (const auto& ga : schema) {
    out += "{";
    for (const AttributeId& id : ga) out += ToString(id) + " ";
    out += "} ";
  }
  return out;
}

class MatcherReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherReferenceTest, AgreesOnRandomBooksInstances) {
  WorkloadConfig config;
  config.num_sources = 24;
  config.seed = static_cast<uint64_t>(GetParam()) * 101 + 3;
  config.generate_data = false;
  GeneratedWorkload workload = GenerateWorkload(config);

  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  for (double theta : {0.5, 0.75, 0.9}) {
    std::vector<SourceId> sources;
    for (SourceId s = 0; s < 24; ++s) {
      if (rng.Bernoulli(0.5)) sources.push_back(s);
    }
    if (sources.size() < 2) sources = {0, 1, 2};
    auto expected =
        ReferenceMatch(workload.universe, sources, {}, theta, 2);
    auto actual =
        ProductionMatch(workload.universe, sources, {}, theta, 2);
    EXPECT_EQ(actual, expected)
        << "theta=" << theta << "\nexpected: " << Describe(expected)
        << "\nactual:   " << Describe(actual);
  }
}

TEST_P(MatcherReferenceTest, AgreesWithGaConstraints) {
  WorkloadConfig config;
  config.num_sources = 16;
  config.seed = static_cast<uint64_t>(GetParam()) * 31 + 9;
  config.generate_data = false;
  GeneratedWorkload workload = GenerateWorkload(config);

  std::vector<SourceId> sources = workload.universe.AllIds();
  // Bridge the first attribute of sources 0 and 1 (always distinct
  // sources, hence a valid GA).
  GlobalAttribute bridge({AttributeId{0, 0}, AttributeId{1, 0}});
  for (double theta : {0.55, 0.8}) {
    auto expected =
        ReferenceMatch(workload.universe, sources, {bridge}, theta, 2);
    auto actual =
        ProductionMatch(workload.universe, sources, {bridge}, theta, 2);
    EXPECT_EQ(actual, expected)
        << "theta=" << theta << "\nexpected: " << Describe(expected)
        << "\nactual:   " << Describe(actual);
  }
}

TEST_P(MatcherReferenceTest, AgreesOnBetaFiltering) {
  WorkloadConfig config;
  config.num_sources = 20;
  config.seed = static_cast<uint64_t>(GetParam()) * 13 + 5;
  config.generate_data = false;
  GeneratedWorkload workload = GenerateWorkload(config);
  std::vector<SourceId> sources = workload.universe.AllIds();
  for (int beta : {2, 3, 4}) {
    auto expected =
        ReferenceMatch(workload.universe, sources, {}, 0.75, beta);
    auto actual =
        ProductionMatch(workload.universe, sources, {}, 0.75, beta);
    EXPECT_EQ(actual, expected) << "beta=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherReferenceTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace ube
