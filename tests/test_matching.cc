#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "source/universe.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ube {
namespace {

Universe MakeUniverse(const std::vector<std::vector<std::string>>& schemas) {
  Universe u;
  for (size_t i = 0; i < schemas.size(); ++i) {
    u.AddSource(DataSource("src-" + std::to_string(i),
                           SourceSchema(schemas[i])));
  }
  return u;
}

MatchOptions Opts(double theta, int beta = 2) {
  MatchOptions o;
  o.theta = theta;
  o.beta = beta;
  return o;
}

// --------------------------- SimilarityGraph ----------------------------

TEST(SimilarityGraphTest, DenseIndexRoundTrip) {
  Universe u = MakeUniverse({{"title", "author"}, {"isbn"}, {"title"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.0);
  EXPECT_EQ(g.num_attributes(), 4);
  for (int i = 0; i < g.num_attributes(); ++i) {
    EXPECT_EQ(g.DenseIndex(g.AttrId(i)), i);
  }
  EXPECT_EQ(g.Name(g.DenseIndex(AttributeId{0, 1})), "author");
}

TEST(SimilarityGraphTest, NoEdgesWithinOneSource) {
  Universe u = MakeUniverse({{"title", "title x"}, {"isbn"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.0);
  int a0 = g.DenseIndex(AttributeId{0, 0});
  for (const auto& e : g.EdgesOf(a0)) {
    EXPECT_NE(g.AttrId(e.neighbor).source, 0);
  }
}

TEST(SimilarityGraphTest, IdenticalNamesShareUnitEdge) {
  Universe u = MakeUniverse({{"title"}, {"title"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.5);
  const auto& edges = g.EdgesOf(0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].neighbor, 1);
  EXPECT_FLOAT_EQ(edges[0].similarity, 1.0f);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SimilarityGraphTest, EdgesAreSymmetric) {
  Universe u = MakeUniverse({{"author", "title"}, {"author name", "titles"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.1);
  for (int a = 0; a < g.num_attributes(); ++a) {
    for (const auto& e : g.EdgesOf(a)) {
      bool back = false;
      for (const auto& e2 : g.EdgesOf(e.neighbor)) {
        if (e2.neighbor == a) {
          EXPECT_FLOAT_EQ(e2.similarity, e.similarity);
          back = true;
        }
      }
      EXPECT_TRUE(back);
    }
  }
}

TEST(SimilarityGraphTest, FloorFiltersEdges) {
  Universe u = MakeUniverse({{"title"}, {"titles"}});
  SimilarityGraph low = SimilarityGraph::WithDefaults(u, 0.2);
  SimilarityGraph high = SimilarityGraph::WithDefaults(u, 0.9);
  EXPECT_EQ(low.num_edges(), 1u);   // J(title, titles) = 0.5
  EXPECT_EQ(high.num_edges(), 0u);
}

TEST(SimilarityGraphTest, PairSimilarityBelowFloorStillComputable) {
  Universe u = MakeUniverse({{"title"}, {"author"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.9);
  double sim = g.PairSimilarity(0, 1);
  EXPECT_GE(sim, 0.0);
  EXPECT_LT(sim, 0.2);
}

TEST(SimilarityGraphTest, GenericMeasureFallback) {
  Universe u = MakeUniverse({{"title"}, {"titel"}});
  SimilarityGraph g(u, std::make_unique<LevenshteinSimilarity>(), 0.1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_NEAR(g.PairSimilarity(0, 1), 1.0 - 2.0 / 5.0, 1e-9);
}

// --------------------------- ClusterMatcher -----------------------------

TEST(ClusterMatcherTest, IdenticalNamesFormOneGa) {
  Universe u = MakeUniverse({{"title", "author"},
                             {"title", "author"},
                             {"title"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1, 2}, {}, {}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->valid);
  ASSERT_EQ(r->schema.num_gas(), 2);
  EXPECT_EQ(r->schema.TotalAttributes(), 5);
  EXPECT_DOUBLE_EQ(r->matching_quality, 1.0);
  EXPECT_TRUE(r->schema.GasAreDisjointAndValid());
  // One GA has the three titles, one has the two authors.
  int sizes[2] = {r->schema.ga(0).size(), r->schema.ga(1).size()};
  EXPECT_EQ(sizes[0] + sizes[1], 5);
}

TEST(ClusterMatcherTest, ThetaBlocksWeakMatches) {
  // J(title, titles) = 0.5: merged at θ=0.4, not at θ=0.75.
  Universe u = MakeUniverse({{"title"}, {"titles"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> strict = matcher.Match({0, 1}, {}, {}, Opts(0.75));
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->schema.num_gas(), 0);
  Result<MatchResult> loose = matcher.Match({0, 1}, {}, {}, Opts(0.4));
  ASSERT_TRUE(loose.ok());
  ASSERT_EQ(loose->schema.num_gas(), 1);
  EXPECT_NEAR(loose->matching_quality, 0.5, 1e-6);
}

TEST(ClusterMatcherTest, SameSourceAttributesNeverMerge) {
  // Source 0 has two identical concepts; a valid GA can hold only one.
  Universe u = MakeUniverse({{"keyword", "keywords"}, {"keyword"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1}, {}, {}, Opts(0.4));
  ASSERT_TRUE(r.ok());
  for (const GlobalAttribute& ga : r->schema.gas()) {
    EXPECT_TRUE(ga.IsValid());
  }
  EXPECT_TRUE(r->schema.GasAreDisjointAndValid());
}

TEST(ClusterMatcherTest, QualityIsMaxPairwiseSimilarity) {
  // Chain: "publication year" ~ "publication years" (0.8), the latter ~
  // others lower; GA quality reports the max pair.
  Universe u = MakeUniverse(
      {{"publication year"}, {"publication years"}, {"publication yearz"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1, 2}, {}, {}, Opts(0.7));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->schema.num_gas(), 1);
  EXPECT_EQ(r->schema.ga(0).size(), 3);
  EXPECT_NEAR(r->ga_qualities[0], 16.0 / 21.0, 1e-6);
}

// The Figure 3 scenario: two lexical families that cannot merge without a
// user GA constraint bridging them.
class BridgingTest : public ::testing::Test {
 protected:
  BridgingTest()
      : universe_(MakeUniverse({{"customer first name"},
                                {"customer family name"},
                                {"customer first names"},
                                {"customer family names"}})),
        graph_(SimilarityGraph::WithDefaults(universe_, 0.25)),
        matcher_(universe_, graph_) {}

  Universe universe_;
  SimilarityGraph graph_;
  ClusterMatcher matcher_;
};

TEST_F(BridgingTest, WithoutConstraintFamiliesStaySeparate) {
  Result<MatchResult> r = matcher_.Match({0, 1, 2, 3}, {}, {}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->schema.num_gas(), 2);
  for (const GlobalAttribute& ga : r->schema.gas()) {
    EXPECT_EQ(ga.size(), 2);
    // Each GA holds one family: {0,2} (first) or {1,3} (family).
    std::vector<SourceId> sources = ga.Sources();
    bool first_family = sources == std::vector<SourceId>{0, 2};
    bool family_family = sources == std::vector<SourceId>{1, 3};
    EXPECT_TRUE(first_family || family_family);
  }
}

TEST_F(BridgingTest, GaConstraintBridgesTheGap) {
  GlobalAttribute bridge({AttributeId{0, 0}, AttributeId{1, 0}});
  Result<MatchResult> r =
      matcher_.Match({0, 1, 2, 3}, {}, {bridge}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->valid);
  // The bridge grows to swallow both families: one GA with all 4 attrs.
  ASSERT_EQ(r->schema.num_gas(), 1);
  EXPECT_EQ(r->schema.ga(0).size(), 4);
  EXPECT_TRUE(r->ga_from_constraint[0]);
  // G ⊑ M must hold.
  MediatedSchema g_schema({bridge});
  EXPECT_TRUE(g_schema.IsSubsumedBy(r->schema));
}

TEST_F(BridgingTest, UserGaKeptEvenWithLowQuality) {
  // A GA constraint pairing two dissimilar attributes survives even though
  // its quality is far below θ.
  GlobalAttribute bridge({AttributeId{0, 0}, AttributeId{1, 0}});
  Result<MatchResult> r = matcher_.Match({0, 1}, {}, {bridge}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->schema.num_gas(), 1);
  EXPECT_TRUE(r->ga_from_constraint[0]);
  EXPECT_LT(r->ga_qualities[0], 0.75);
}

TEST(ClusterMatcherTest, SingleAttributeUserGaScoresOne) {
  Universe u = MakeUniverse({{"title"}, {"author"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  GlobalAttribute single({AttributeId{0, 0}});
  Result<MatchResult> r = matcher.Match({0, 1}, {}, {single}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->schema.num_gas(), 1);
  EXPECT_DOUBLE_EQ(r->ga_qualities[0], 1.0);
}

TEST(ClusterMatcherTest, SourceConstraintUnsatisfiedReturnsInvalid) {
  // Source 2's attribute matches nothing: no GA touches it, so M is not
  // valid on C = {2} and Match reports quality 0 (Algorithm 1's NULL).
  Universe u = MakeUniverse({{"title"}, {"title"}, {"zzz unique"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1, 2}, {2}, {}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->valid);
  EXPECT_DOUBLE_EQ(r->matching_quality, 0.0);
  EXPECT_EQ(r->schema.num_gas(), 0);
}

TEST(ClusterMatcherTest, SourceConstraintSatisfiedWhenTouched) {
  Universe u = MakeUniverse({{"title"}, {"title"}, {"zzz unique"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1, 2}, {0, 1}, {}, Opts(0.75));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid);
  EXPECT_EQ(r->schema.num_gas(), 1);
}

TEST(ClusterMatcherTest, BetaDropsSmallGas) {
  Universe u = MakeUniverse({{"title", "author"},
                             {"title", "author"},
                             {"title"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> beta2 = matcher.Match({0, 1, 2}, {}, {}, Opts(0.75, 2));
  Result<MatchResult> beta3 = matcher.Match({0, 1, 2}, {}, {}, Opts(0.75, 3));
  ASSERT_TRUE(beta2.ok());
  ASSERT_TRUE(beta3.ok());
  EXPECT_EQ(beta2->schema.num_gas(), 2);  // title x3, author x2
  EXPECT_EQ(beta3->schema.num_gas(), 1);  // only title x3 survives
  EXPECT_EQ(beta3->schema.ga(0).size(), 3);
}

TEST(ClusterMatcherTest, BetaExemptsUserGas) {
  Universe u = MakeUniverse({{"title"}, {"author"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  GlobalAttribute user_ga({AttributeId{0, 0}, AttributeId{1, 0}});
  Result<MatchResult> r = matcher.Match({0, 1}, {}, {user_ga}, Opts(0.75, 5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema.num_gas(), 1);
}

TEST(ClusterMatcherTest, DeterministicAcrossCalls) {
  WorkloadConfig config;
  config.num_sources = 40;
  config.generate_data = false;
  GeneratedWorkload w = GenerateWorkload(config);
  SimilarityGraph g = SimilarityGraph::WithDefaults(w.universe, 0.25);
  ClusterMatcher matcher(w.universe, g);
  std::vector<SourceId> sources;
  for (SourceId s = 0; s < 40; s += 2) sources.push_back(s);
  Result<MatchResult> a = matcher.Match(sources, {}, {}, Opts(0.75));
  Result<MatchResult> b = matcher.Match(sources, {}, {}, Opts(0.75));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->schema.num_gas(), b->schema.num_gas());
  for (int i = 0; i < a->schema.num_gas(); ++i) {
    EXPECT_EQ(a->schema.ga(i), b->schema.ga(i));
  }
  EXPECT_DOUBLE_EQ(a->matching_quality, b->matching_quality);
}

// ------------------------- input validation ------------------------------

TEST(ClusterMatcherErrorTest, ThetaBelowFloorRejected) {
  Universe u = MakeUniverse({{"a"}, {"b"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.5);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1}, {}, {}, Opts(0.3));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterMatcherErrorTest, ConstraintOutsideS) {
  Universe u = MakeUniverse({{"a"}, {"b"}, {"c"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 1}, {2}, {}, Opts(0.75));
  EXPECT_FALSE(r.ok());
}

TEST(ClusterMatcherErrorTest, DuplicateSources) {
  Universe u = MakeUniverse({{"a"}, {"b"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  Result<MatchResult> r = matcher.Match({0, 0, 1}, {}, {}, Opts(0.75));
  EXPECT_FALSE(r.ok());
}

TEST(ClusterMatcherErrorTest, IntersectingGaConstraints) {
  Universe u = MakeUniverse({{"a"}, {"b"}, {"c"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  GlobalAttribute g1({AttributeId{0, 0}, AttributeId{1, 0}});
  GlobalAttribute g2({AttributeId{0, 0}, AttributeId{2, 0}});
  Result<MatchResult> r = matcher.Match({0, 1, 2}, {}, {g1, g2}, Opts(0.75));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterMatcherErrorTest, GaConstraintReferencesSourceOutsideS) {
  Universe u = MakeUniverse({{"a"}, {"b"}, {"c"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  GlobalAttribute ga({AttributeId{0, 0}, AttributeId{2, 0}});
  Result<MatchResult> r = matcher.Match({0, 1}, {}, {ga}, Opts(0.75));
  EXPECT_FALSE(r.ok());
}

TEST(ClusterMatcherErrorTest, GaConstraintBadAttribute) {
  Universe u = MakeUniverse({{"a"}, {"b"}});
  SimilarityGraph g = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, g);
  GlobalAttribute ga({AttributeId{0, 5}, AttributeId{1, 0}});
  Result<MatchResult> r = matcher.Match({0, 1}, {}, {ga}, Opts(0.75));
  EXPECT_FALSE(r.ok());
}

// ---------------------- randomized invariants ----------------------------

class MatcherPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherPropertyTest, OutputAlwaysValid) {
  WorkloadConfig config;
  config.num_sources = 30;
  config.seed = static_cast<uint64_t>(GetParam());
  config.generate_data = false;
  GeneratedWorkload w = GenerateWorkload(config);
  SimilarityGraph g = SimilarityGraph::WithDefaults(w.universe, 0.25);
  ClusterMatcher matcher(w.universe, g);

  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  for (double theta : {0.5, 0.75, 0.9}) {
    std::vector<SourceId> sources;
    for (SourceId s = 0; s < 30; ++s) {
      if (rng.Bernoulli(0.4)) sources.push_back(s);
    }
    if (sources.empty()) sources.push_back(0);
    Result<MatchResult> r = matcher.Match(sources, {}, {}, Opts(theta));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->valid);  // no source constraints -> always valid
    EXPECT_TRUE(r->schema.GasAreDisjointAndValid());
    ASSERT_EQ(r->ga_qualities.size(),
              static_cast<size_t>(r->schema.num_gas()));
    for (int i = 0; i < r->schema.num_gas(); ++i) {
      const GlobalAttribute& ga = r->schema.ga(i);
      EXPECT_GE(ga.size(), 2);
      EXPECT_TRUE(ga.IsValid());
      // θ lower bound holds for every generated (non-constraint) GA.
      EXPECT_GE(r->ga_qualities[i], theta - 1e-9);
      // All attributes belong to sources in S.
      for (const AttributeId& id : ga.attributes()) {
        EXPECT_TRUE(std::find(sources.begin(), sources.end(), id.source) !=
                    sources.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace ube
