#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "text/ngram.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace ube {
namespace {

// ------------------------------ NgramSet --------------------------------

TEST(NgramSetTest, EmptyText) {
  NgramSet s = NgramSet::Build("", 3);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(NgramSetTest, SingleCharWithPadding) {
  // "a" padded to "^^a^^" yields trigrams ^^a, ^a^, a^^ (3 distinct).
  NgramSet s = NgramSet::Build("a", 3);
  EXPECT_EQ(s.size(), 3u);
}

TEST(NgramSetTest, KnownTrigramCount) {
  // "abc" padded yields |text| + n - 1 = 5 trigrams, all distinct here.
  NgramSet s = NgramSet::Build("abc", 3);
  EXPECT_EQ(s.size(), 5u);
}

TEST(NgramSetTest, RepeatedGramsDeduplicated) {
  // "aaaa" padded: ^^a ^aa aaa aaa aa^ a^^ -> {^^a, ^aa, aaa, aa^, a^^} = 5.
  NgramSet s = NgramSet::Build("aaaa", 3);
  EXPECT_EQ(s.size(), 5u);
}

TEST(NgramSetTest, GramsAreSortedUnique) {
  NgramSet s = NgramSet::Build("publication year", 3);
  const auto& g = s.grams();
  for (size_t i = 1; i < g.size(); ++i) EXPECT_LT(g[i - 1], g[i]);
}

TEST(NgramSetTest, DifferentNProduceDifferentSets) {
  EXPECT_NE(NgramSet::Build("title", 2), NgramSet::Build("title", 3));
}

TEST(NgramSetTest, IntersectionAndUnion) {
  NgramSet a = NgramSet::Build("abc", 3);
  NgramSet b = NgramSet::Build("abc", 3);
  EXPECT_EQ(a.IntersectionSize(b), a.size());
  EXPECT_EQ(a.UnionSize(b), a.size());
  NgramSet c = NgramSet::Build("xyz", 3);
  EXPECT_EQ(a.IntersectionSize(c), 0u);
  EXPECT_EQ(a.UnionSize(c), a.size() + c.size());
}

TEST(NgramSetTest, JaccardIdentical) {
  NgramSet a = NgramSet::Build("author", 3);
  EXPECT_DOUBLE_EQ(a.Jaccard(a), 1.0);
}

TEST(NgramSetTest, JaccardBothEmpty) {
  NgramSet a, b;
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0);
}

TEST(NgramSetTest, JaccardOneEmpty) {
  NgramSet a = NgramSet::Build("author", 3);
  NgramSet b;
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.0);
}

TEST(NgramJaccardTest, NormalizesBeforeComparing) {
  EXPECT_DOUBLE_EQ(NgramJaccard("Author_Name", "author  name"), 1.0);
}

TEST(NgramJaccardTest, PluralOfLongNameStaysHigh) {
  // This property is what makes θ = 0.75 discriminate long-name variants
  // from short-name variants (see workload design).
  EXPECT_GT(NgramJaccard("publication year", "publication years"), 0.75);
  EXPECT_LT(NgramJaccard("title", "titles"), 0.75);
}

TEST(NgramJaccardTest, CrossConceptPairsStayLow) {
  EXPECT_LT(NgramJaccard("book edition", "book condition"), 0.70);
  EXPECT_LT(NgramJaccard("author", "title"), 0.2);
}

TEST(NgramSetDeathTest, RejectsBadN) {
  EXPECT_DEATH(NgramSet::Build("x", 0), "n-gram size");
  EXPECT_DEATH(NgramSet::Build("x", 9), "n-gram size");
}

// --------------------------- Levenshtein --------------------------------

struct LevenshteinCase {
  const char* a;
  const char* b;
  size_t distance;
};

class LevenshteinParamTest : public ::testing::TestWithParam<LevenshteinCase> {
};

TEST_P(LevenshteinParamTest, Distance) {
  const LevenshteinCase& c = GetParam();
  EXPECT_EQ(LevenshteinDistance(c.a, c.b), c.distance);
  EXPECT_EQ(LevenshteinDistance(c.b, c.a), c.distance);  // symmetric
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LevenshteinParamTest,
    ::testing::Values(LevenshteinCase{"", "", 0},
                      LevenshteinCase{"", "abc", 3},
                      LevenshteinCase{"abc", "abc", 0},
                      LevenshteinCase{"kitten", "sitting", 3},
                      LevenshteinCase{"flaw", "lawn", 2},
                      LevenshteinCase{"book", "back", 2},
                      LevenshteinCase{"a", "b", 1},
                      LevenshteinCase{"intention", "execution", 5}));

TEST(LevenshteinSimilarityTest, IdenticalIsOne) {
  LevenshteinSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Score("author", "Author"), 1.0);  // normalized
}

TEST(LevenshteinSimilarityTest, CompletelyDifferentNearZero) {
  LevenshteinSimilarity sim;
  EXPECT_LT(sim.Score("abc", "xyz"), 0.01);
}

// ------------------------------ Jaro ------------------------------------

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  JaroWinklerSimilarity jw(0.1);
  JaroWinklerSimilarity plain(0.0);
  double boosted = jw.Score("martha", "marhta");
  double unboosted = plain.Score("martha", "marhta");
  EXPECT_GT(boosted, unboosted);
  EXPECT_NEAR(boosted, 0.9611, 1e-3);
}

// --------------------------- Token cosine -------------------------------

TEST(TokenCosineTest, SharedTokensScoreHigh) {
  TokenCosineSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Score("publication year", "year publication"), 1.0);
  EXPECT_NEAR(sim.Score("publication year", "year published"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(sim.Score("alpha beta", "gamma delta"), 0.0);
}

TEST(TokenCosineTest, EmptyCases) {
  TokenCosineSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Score("", ""), 1.0);
  EXPECT_DOUBLE_EQ(sim.Score("a", ""), 0.0);
}

// ---------------- Properties shared by every measure --------------------

class SimilarityPropertyTest
    : public ::testing::TestWithParam<
          std::shared_ptr<AttributeSimilarity>> {};

TEST_P(SimilarityPropertyTest, ReflexiveSymmetricBounded) {
  const AttributeSimilarity& sim = *GetParam();
  const std::vector<std::string> names = {
      "title",  "book title",  "author",     "author name", "keyword",
      "isbn",   "price range", "publisher",  "binding",     "format",
      "a",      "",            "Pub_Year",   "pub year",    "ZIP code",
  };
  for (const std::string& a : names) {
    EXPECT_NEAR(sim.Score(a, a), 1.0, 1e-12) << sim.name() << " on " << a;
    for (const std::string& b : names) {
      double ab = sim.Score(a, b);
      double ba = sim.Score(b, a);
      EXPECT_NEAR(ab, ba, 1e-12) << sim.name() << " " << a << "/" << b;
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
    }
  }
}

TEST_P(SimilarityPropertyTest, RandomStringsStayBounded) {
  const AttributeSimilarity& sim = *GetParam();
  Rng rng(77);
  auto random_name = [&]() {
    std::string s;
    int len = static_cast<int>(rng.UniformInt(0, 12));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(26)));
      if (rng.Bernoulli(0.15)) s.push_back(' ');
    }
    return s;
  };
  for (int i = 0; i < 60; ++i) {
    std::string a = random_name();
    std::string b = random_name();
    double score = sim.Score(a, b);
    EXPECT_GE(score, 0.0) << sim.name() << " '" << a << "' '" << b << "'";
    EXPECT_LE(score, 1.0 + 1e-12);
    EXPECT_NEAR(score, sim.Score(b, a), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, SimilarityPropertyTest,
    ::testing::Values(std::make_shared<NgramJaccardSimilarity>(3),
                      std::make_shared<NgramJaccardSimilarity>(2),
                      std::make_shared<LevenshteinSimilarity>(),
                      std::make_shared<JaroWinklerSimilarity>(),
                      std::make_shared<JaroWinklerSimilarity>(0.0),
                      std::make_shared<TokenCosineSimilarity>()),
    [](const ::testing::TestParamInfo<
        std::shared_ptr<AttributeSimilarity>>& info) {
      std::string name(info.param->name());
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

// --------------------------- HybridSimilarity ---------------------------

TEST(HybridSimilarityTest, MaxTakesBestMember) {
  HybridSimilarity hybrid(HybridSimilarity::Combine::kMax);
  hybrid.Add(std::make_unique<NgramJaccardSimilarity>(3));
  hybrid.Add(std::make_unique<JaroWinklerSimilarity>());
  double ngram = NgramJaccardSimilarity(3).Score("keyword", "keywrod");
  double jw = JaroWinklerSimilarity().Score("keyword", "keywrod");
  EXPECT_DOUBLE_EQ(hybrid.Score("keyword", "keywrod"), std::max(ngram, jw));
  // Transposition typo: Jaro-Winkler forgives it, trigrams do not.
  EXPECT_GT(jw, ngram);
}

TEST(HybridSimilarityTest, WeightedMean) {
  HybridSimilarity hybrid(HybridSimilarity::Combine::kWeightedMean);
  hybrid.Add(std::make_unique<NgramJaccardSimilarity>(3), 3.0);
  hybrid.Add(std::make_unique<LevenshteinSimilarity>(), 1.0);
  double ngram = NgramJaccardSimilarity(3).Score("title", "titles");
  double lev = LevenshteinSimilarity().Score("title", "titles");
  EXPECT_NEAR(hybrid.Score("title", "titles"),
              (3.0 * ngram + 1.0 * lev) / 4.0, 1e-12);
}

TEST(HybridSimilarityTest, IdenticalStringsScoreOne) {
  for (auto combine : {HybridSimilarity::Combine::kMax,
                       HybridSimilarity::Combine::kWeightedMean}) {
    HybridSimilarity hybrid(combine);
    hybrid.Add(std::make_unique<NgramJaccardSimilarity>(3));
    hybrid.Add(std::make_unique<TokenCosineSimilarity>());
    EXPECT_DOUBLE_EQ(hybrid.Score("author name", "author name"), 1.0);
  }
}

TEST(HybridSimilarityTest, SingleMemberIsTransparentUnderBothCombinators) {
  for (auto combine : {HybridSimilarity::Combine::kMax,
                       HybridSimilarity::Combine::kWeightedMean}) {
    HybridSimilarity hybrid(combine);
    hybrid.Add(std::make_unique<JaroWinklerSimilarity>(), 7.0);
    EXPECT_DOUBLE_EQ(hybrid.Score("publisher", "publishers"),
                     JaroWinklerSimilarity().Score("publisher", "publishers"));
  }
}

TEST(HybridSimilarityTest, WeightedMeanNormalizesWeights) {
  // {1, 3} and {0.25, 0.75} are the same mixture; scores must agree.
  HybridSimilarity raw(HybridSimilarity::Combine::kWeightedMean);
  raw.Add(std::make_unique<NgramJaccardSimilarity>(3), 1.0);
  raw.Add(std::make_unique<LevenshteinSimilarity>(), 3.0);
  HybridSimilarity normalized(HybridSimilarity::Combine::kWeightedMean);
  normalized.Add(std::make_unique<NgramJaccardSimilarity>(3), 0.25);
  normalized.Add(std::make_unique<LevenshteinSimilarity>(), 0.75);
  EXPECT_NEAR(raw.Score("price", "prices"),
              normalized.Score("price", "prices"), 1e-12);
}

TEST(HybridSimilarityTest, MaxDominatesWeightedMeanOfSameMembers) {
  HybridSimilarity as_max(HybridSimilarity::Combine::kMax);
  HybridSimilarity as_mean(HybridSimilarity::Combine::kWeightedMean);
  for (HybridSimilarity* h : {&as_max, &as_mean}) {
    h->Add(std::make_unique<NgramJaccardSimilarity>(3), 1.0);
    h->Add(std::make_unique<JaroWinklerSimilarity>(), 2.0);
    h->Add(std::make_unique<TokenCosineSimilarity>(), 0.5);
  }
  for (const char* pair : {"book title", "isbn", "zqxvw"}) {
    EXPECT_GE(as_max.Score("title", pair), as_mean.Score("title", pair));
  }
}

TEST(HybridSimilarityDeathTest, EmptyHybridAborts) {
  HybridSimilarity hybrid;
  EXPECT_DEATH(hybrid.Score("a", "b"), "no member measures");
}

TEST(DefaultSimilarityTest, IsTrigramJaccard) {
  std::unique_ptr<AttributeSimilarity> sim = MakeDefaultSimilarity();
  EXPECT_EQ(sim->name(), "ngram-jaccard");
  EXPECT_DOUBLE_EQ(sim->Score("title", "title"), 1.0);
  auto* ngram = dynamic_cast<NgramJaccardSimilarity*>(sim.get());
  ASSERT_NE(ngram, nullptr);
  EXPECT_EQ(ngram->n(), 3);
}

}  // namespace
}  // namespace ube
