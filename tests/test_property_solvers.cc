// Differential solver oracles (ISSUE 3 tentpole): on randomly generated
// small universes, every heuristic solver must (a) return a structurally
// feasible solution, (b) never beat the exhaustive optimum, and (c) return
// bit-identical observables at num_threads = 1 and num_threads = 0 (the
// PR-1 parallel-evaluation contract). Each case's failure message names the
// master seed; rerun with UBE_PROPERTY_SEED=<seed> to replay exactly.
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "optimize/solver.h"
#include "testkit/generators.h"
#include "testkit/oracles.h"
#include "testkit/property.h"
#include "util/rng.h"

namespace ube {
namespace {

using testkit::GenerateModel;
using testkit::GenerateSpec;
using testkit::GenerateUniverse;
using testkit::PropertyRunner;
using testkit::PropertySolverOptions;
using testkit::SolutionIsFeasible;
using testkit::SolutionsBitIdentical;

class SolverOracleTest : public ::testing::TestWithParam<SolverKind> {};

// The acceptance bar of this harness: >= 50 random universes per solver
// with zero quality or constraint violations at both thread counts.
TEST_P(SolverOracleTest, FeasibleBoundedAndThreadCountInvariant) {
  const SolverKind kind = GetParam();
  PropertyRunner runner(
      std::string("solver-vs-exhaustive-") + std::string(SolverKindName(kind)),
      50);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    QualityModel model = GenerateModel(rng);
    ProblemSpec spec = GenerateSpec(rng, universe);
    const uint64_t solver_seed = rng.Next64();

    Engine engine(std::move(universe), std::move(model));
    Result<Solution> exact = engine.Solve(spec, SolverKind::kExhaustive,
                                          PropertySolverOptions(solver_seed));
    ASSERT_TRUE(exact.ok()) << exact.status();
    ASSERT_TRUE(SolutionIsFeasible(*exact, engine.universe(), spec));

    SolverOptions sequential = PropertySolverOptions(solver_seed);
    sequential.record_trace = true;
    sequential.num_threads = 1;
    Result<Solution> solution = engine.Solve(spec, kind, sequential);
    ASSERT_TRUE(solution.ok()) << solution.status();

    // (a) Zero constraint violations.
    EXPECT_TRUE(SolutionIsFeasible(*solution, engine.universe(), spec));
    // (b) Heuristic quality never exceeds the exhaustive optimum, and the
    // reported quality matches an independent re-evaluation of the chosen
    // sources (no stale-incumbent bookkeeping).
    EXPECT_LE(solution->quality, exact->quality + 1e-9);
    Result<CandidateEvaluator::Evaluation> rescored =
        engine.EvaluateCandidate(spec, solution->sources);
    ASSERT_TRUE(rescored.ok()) << rescored.status();
    EXPECT_NEAR(solution->quality, rescored->quality, 1e-9);

    // (c) Cross-thread replay: num_threads = 0 (hardware concurrency) must
    // reproduce every observable bit-for-bit.
    SolverOptions parallel = sequential;
    parallel.num_threads = 0;
    Result<Solution> replay = engine.Solve(spec, kind, parallel);
    ASSERT_TRUE(replay.ok()) << replay.status();
    EXPECT_TRUE(SolutionsBitIdentical(*solution, *replay));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SolverOracleTest,
    ::testing::Values(SolverKind::kTabu, SolverKind::kLocalSearch,
                      SolverKind::kAnnealing, SolverKind::kPso,
                      SolverKind::kGreedy, SolverKind::kRandom),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

// The exhaustive baseline itself must be deterministic and feasible — it
// anchors every differential oracle above.
TEST(ExhaustiveOracleTest, DeterministicAcrossRuns) {
  PropertyRunner runner("exhaustive-deterministic", 20);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    QualityModel model = GenerateModel(rng);
    ProblemSpec spec = GenerateSpec(rng, universe);
    Engine engine(std::move(universe), std::move(model));
    Result<Solution> first = engine.Solve(spec, SolverKind::kExhaustive);
    Result<Solution> second = engine.Solve(spec, SolverKind::kExhaustive);
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(second.ok()) << second.status();
    EXPECT_EQ(first->sources, second->sources);
    EXPECT_EQ(first->quality, second->quality);
    EXPECT_EQ(first->stats.evaluations, second->stats.evaluations);
  }
}

// Same seed => same everything, for every solver: the property harness's
// replay story rests on this.
TEST(SolverReplayTest, SameSeedReproducesBitIdentically) {
  PropertyRunner runner("same-seed-replay", 10);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    for (SolverKind kind :
         {SolverKind::kTabu, SolverKind::kLocalSearch, SolverKind::kAnnealing,
          SolverKind::kPso, SolverKind::kGreedy, SolverKind::kRandom}) {
      SCOPED_TRACE(SolverKindName(kind));
      Rng rng = runner.CaseRng(c);
      Universe universe = GenerateUniverse(rng);
      QualityModel model = GenerateModel(rng);
      ProblemSpec spec = GenerateSpec(rng, universe);
      const uint64_t solver_seed = rng.Next64();
      Engine engine(std::move(universe), std::move(model));
      SolverOptions options = PropertySolverOptions(solver_seed);
      options.record_trace = true;
      Result<Solution> first = engine.Solve(spec, kind, options);
      Result<Solution> second = engine.Solve(spec, kind, options);
      ASSERT_TRUE(first.ok()) << first.status();
      ASSERT_TRUE(second.ok()) << second.status();
      EXPECT_TRUE(SolutionsBitIdentical(*first, *second));
    }
  }
}

}  // namespace
}  // namespace ube
