#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qef/qef.h"
#include "qef/quality_model.h"
#include "sketch/distinct_estimator.h"
#include "source/universe.h"

namespace ube {
namespace {

// Builds a source with an exact signature over [first, first+count) ids and
// the given nominal cardinality (defaults to count).
DataSource MakeSource(const std::string& name, uint64_t first, uint64_t count,
                      int64_t cardinality = -1, bool cooperate = true) {
  DataSource s(name, SourceSchema({"title"}));
  s.set_cardinality(cardinality >= 0 ? cardinality
                                     : static_cast<int64_t>(count));
  if (cooperate) {
    auto sig = std::make_unique<ExactSignature>();
    for (uint64_t i = first; i < first + count; ++i) sig->Add(i);
    s.set_signature(std::move(sig));
  }
  return s;
}

// Universe: A = [0, 100), B = [50, 150), C = [200, 300). |∪U| = 250.
class DataQefTest : public ::testing::Test {
 protected:
  DataQefTest() {
    universe_.AddSource(MakeSource("A", 0, 100));
    universe_.AddSource(MakeSource("B", 50, 100));
    universe_.AddSource(MakeSource("C", 200, 100));
  }

  EvalContext Context(const std::vector<SourceId>& sources) {
    sources_ = sources;
    return model_.MakeContext(universe_, sources_, nullptr);
  }

  Universe universe_;
  QualityModel model_;  // no QEFs needed just for MakeContext
  std::vector<SourceId> sources_;
};

TEST_F(DataQefTest, ContextAggregates) {
  EvalContext ctx = Context({0, 1});
  EXPECT_EQ(ctx.total_cardinality, 200);
  EXPECT_EQ(ctx.cooperating_count, 2);
  EXPECT_EQ(ctx.cooperating_cardinality, 200);
  EXPECT_DOUBLE_EQ(ctx.union_estimate, 150.0);  // exact signatures
}

TEST_F(DataQefTest, CardinalityQef) {
  CardinalityQef card;
  EXPECT_DOUBLE_EQ(card.Evaluate(Context({0})), 100.0 / 300.0);
  EXPECT_DOUBLE_EQ(card.Evaluate(Context({0, 1, 2})), 1.0);
}

TEST_F(DataQefTest, CoverageQef) {
  CoverageQef coverage;
  // |∪{A}| = 100 of 250.
  EXPECT_DOUBLE_EQ(coverage.Evaluate(Context({0})), 100.0 / 250.0);
  // |∪{A,B}| = 150 of 250.
  EXPECT_DOUBLE_EQ(coverage.Evaluate(Context({0, 1})), 150.0 / 250.0);
  EXPECT_DOUBLE_EQ(coverage.Evaluate(Context({0, 1, 2})), 1.0);
}

TEST_F(DataQefTest, RedundancyOverlapFactor) {
  RedundancyQef redundancy;
  // Single source: defined as 1 (no overlap possible).
  EXPECT_DOUBLE_EQ(redundancy.Evaluate(Context({0})), 1.0);
  // A and C are disjoint: o = 200/200 = 1 -> R = (2-1)/(2-1) = 1.
  EXPECT_DOUBLE_EQ(redundancy.Evaluate(Context({0, 2})), 1.0);
  // A and B overlap by 50: o = 200/150 -> R = (2 - 4/3) / 1 = 2/3.
  EXPECT_NEAR(redundancy.Evaluate(Context({0, 1})), 2.0 / 3.0, 1e-9);
}

TEST_F(DataQefTest, RedundancyIdenticalSourcesScoreZero) {
  Universe u;
  u.AddSource(MakeSource("X", 0, 100));
  u.AddSource(MakeSource("Y", 0, 100));
  QualityModel m;
  std::vector<SourceId> sources = {0, 1};
  EvalContext ctx = m.MakeContext(u, sources, nullptr);
  RedundancyQef redundancy;
  // o = 200/100 = 2 = |S| -> R = 0: worst possible, as the paper requires.
  EXPECT_DOUBLE_EQ(redundancy.Evaluate(ctx), 0.0);
}

TEST_F(DataQefTest, RedundancyUnionRatioMode) {
  RedundancyQef ratio(RedundancyQef::Mode::kUnionRatio);
  // |∪{A,B}| / (|A|+|B|) = 150/200.
  EXPECT_NEAR(ratio.Evaluate(Context({0, 1})), 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(ratio.Evaluate(Context({0, 2})), 1.0);
}

TEST_F(DataQefTest, UncooperativeSourcesExcluded) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 100));
  u.AddSource(MakeSource("N", 0, 100, 100, /*cooperate=*/false));
  QualityModel m;
  std::vector<SourceId> both = {0, 1};
  EvalContext ctx = m.MakeContext(u, both, nullptr);
  EXPECT_EQ(ctx.cooperating_count, 1);
  EXPECT_EQ(ctx.total_cardinality, 200);
  EXPECT_EQ(ctx.cooperating_cardinality, 100);
  // Coverage counts only the cooperating source's data.
  CoverageQef coverage;
  EXPECT_DOUBLE_EQ(coverage.Evaluate(ctx), 1.0);  // |∪U| also excludes N
  // Redundancy over a single cooperating source: 1.
  RedundancyQef redundancy;
  EXPECT_DOUBLE_EQ(redundancy.Evaluate(ctx), 1.0);
}

TEST(CoverageQefTest, NoSignaturesAnywhereScoresZero) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 10, 10, /*cooperate=*/false));
  QualityModel m;
  std::vector<SourceId> sources = {0};
  EvalContext ctx = m.MakeContext(u, sources, nullptr);
  CoverageQef coverage;
  EXPECT_DOUBLE_EQ(coverage.Evaluate(ctx), 0.0);
}

// --------------------------- MatchingQualityQef -------------------------

TEST(MatchingQefTest, ReflectsMatchResult) {
  MatchingQualityQef qef;
  MatchResult match;
  match.valid = true;
  match.matching_quality = 0.8;
  EvalContext ctx;
  ctx.match = &match;
  EXPECT_DOUBLE_EQ(qef.Evaluate(ctx), 0.8);
  match.valid = false;
  EXPECT_DOUBLE_EQ(qef.Evaluate(ctx), 0.0);
}

// --------------------------- SchemaCoverageQef --------------------------

TEST(SchemaCoverageQefTest, FractionOfAttributesCovered) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 10));   // 1 attribute each
  u.AddSource(MakeSource("B", 10, 10));
  SchemaCoverageQef qef;
  MatchResult match;
  match.valid = true;
  // Schema covering both attributes: coverage 1.
  match.schema = MediatedSchema(
      {GlobalAttribute({AttributeId{0, 0}, AttributeId{1, 0}})});
  QualityModel m;
  std::vector<SourceId> sources = {0, 1};
  EvalContext ctx = m.MakeContext(u, sources, &match);
  EXPECT_DOUBLE_EQ(qef.Evaluate(ctx), 1.0);
  // Empty schema: coverage 0.
  MatchResult empty;
  empty.valid = true;
  EvalContext ctx2 = m.MakeContext(u, sources, &empty);
  EXPECT_DOUBLE_EQ(qef.Evaluate(ctx2), 0.0);
  // Invalid match: 0.
  MatchResult invalid;
  invalid.valid = false;
  EvalContext ctx3 = m.MakeContext(u, sources, &invalid);
  EXPECT_DOUBLE_EQ(qef.Evaluate(ctx3), 0.0);
}

TEST(SchemaCoverageQefTest, TriggersNeedsMatching) {
  QualityModel model;
  model.AddQef(std::make_unique<SchemaCoverageQef>(), 1.0);
  EXPECT_TRUE(model.NeedsMatching());
}

// --------------------------- CharacteristicQef --------------------------

class CharacteristicQefTest : public ::testing::Test {
 protected:
  CharacteristicQefTest() {
    // mttf: A=50, B=150, C=100; cardinalities 100, 300, 100.
    universe_.AddSource(MakeSource("A", 0, 100));
    universe_.AddSource(MakeSource("B", 100, 300));
    universe_.AddSource(MakeSource("C", 400, 100));
    universe_.mutable_source(0)->SetCharacteristic("mttf", 50.0);
    universe_.mutable_source(1)->SetCharacteristic("mttf", 150.0);
    universe_.mutable_source(2)->SetCharacteristic("mttf", 100.0);
  }

  EvalContext Context(const std::vector<SourceId>& sources) {
    sources_ = sources;
    return model_.MakeContext(universe_, sources_, nullptr);
  }

  Universe universe_;
  QualityModel model_;
  std::vector<SourceId> sources_;
};

TEST_F(CharacteristicQefTest, WeightedSumMatchesHandComputation) {
  CharacteristicQef wsum("mttf", Aggregation::kWeightedSum);
  // normalized: A=0, B=1, C=0.5. wsum({A,B}) = (0*100 + 1*300)/400 = 0.75.
  EXPECT_NEAR(wsum.Evaluate(Context({0, 1})), 0.75, 1e-9);
  // wsum({A,C}) = (0*100 + 0.5*100)/200 = 0.25.
  EXPECT_NEAR(wsum.Evaluate(Context({0, 2})), 0.25, 1e-9);
  // High-value source with more tuples is worth more than with fewer:
  // that is exactly the paper's motivation for weighting by cardinality.
  CharacteristicQef unweighted("mttf", Aggregation::kMean);
  EXPECT_GT(wsum.Evaluate(Context({0, 1})),
            unweighted.Evaluate(Context({0, 1})));
}

TEST_F(CharacteristicQefTest, MeanMinMax) {
  CharacteristicQef mean("mttf", Aggregation::kMean);
  CharacteristicQef min("mttf", Aggregation::kMin);
  CharacteristicQef max("mttf", Aggregation::kMax);
  EXPECT_NEAR(mean.Evaluate(Context({0, 1, 2})), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(min.Evaluate(Context({0, 1, 2})), 0.0);
  EXPECT_DOUBLE_EQ(max.Evaluate(Context({0, 1, 2})), 1.0);
}

TEST_F(CharacteristicQefTest, InvertForSmallerIsBetter) {
  CharacteristicQef latency("mttf", Aggregation::kMean, /*invert=*/true);
  // Inverted: A=1, B=0, C=0.5.
  EXPECT_NEAR(latency.Evaluate(Context({0})), 1.0, 1e-9);
  EXPECT_NEAR(latency.Evaluate(Context({1})), 0.0, 1e-9);
}

TEST_F(CharacteristicQefTest, MissingCharacteristicScoresWorst) {
  universe_.mutable_source(2)->SetCharacteristic("fees", 10.0);
  CharacteristicQef fees("fees", Aggregation::kMean);
  // Only C defines fees; range degenerate -> C scores 1, A scores 0.
  EXPECT_NEAR(fees.Evaluate(Context({0, 2})), 0.5, 1e-9);
}

TEST_F(CharacteristicQefTest, UnknownCharacteristicScoresZero) {
  CharacteristicQef unknown("reputation", Aggregation::kWeightedSum);
  EXPECT_DOUBLE_EQ(unknown.Evaluate(Context({0, 1, 2})), 0.0);
}

TEST_F(CharacteristicQefTest, DegenerateRangeScoresOne) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 10));
  u.AddSource(MakeSource("B", 10, 10));
  u.mutable_source(0)->SetCharacteristic("mttf", 5.0);
  u.mutable_source(1)->SetCharacteristic("mttf", 5.0);
  QualityModel m;
  std::vector<SourceId> sources = {0, 1};
  EvalContext ctx = m.MakeContext(u, sources, nullptr);
  CharacteristicQef qef("mttf", Aggregation::kWeightedSum);
  EXPECT_DOUBLE_EQ(qef.Evaluate(ctx), 1.0);
}

TEST_F(CharacteristicQefTest, NameIncludesCharacteristic) {
  CharacteristicQef qef("mttf", Aggregation::kWeightedSum);
  EXPECT_EQ(qef.name(), "char:mttf");
}

// ------------------------------ LambdaQef -------------------------------

TEST(LambdaQefTest, EvaluatesUserFunction) {
  LambdaQef qef("half-sources", [](const EvalContext& ctx) {
    return ctx.sources->size() >= 2 ? 1.0 : 0.5;
  });
  Universe u;
  u.AddSource(MakeSource("A", 0, 10));
  u.AddSource(MakeSource("B", 10, 10));
  QualityModel m;
  std::vector<SourceId> one = {0};
  std::vector<SourceId> two = {0, 1};
  EvalContext c1 = m.MakeContext(u, one, nullptr);
  EvalContext c2 = m.MakeContext(u, two, nullptr);
  EXPECT_DOUBLE_EQ(qef.Evaluate(c1), 0.5);
  EXPECT_DOUBLE_EQ(qef.Evaluate(c2), 1.0);
  EXPECT_EQ(qef.name(), "half-sources");
}

// ----------------------------- QualityModel -----------------------------

TEST(QualityModelTest, DefaultModelMatchesPaperWeights) {
  QualityModel model = QualityModel::MakeDefault();
  ASSERT_EQ(model.num_qefs(), 5);
  EXPECT_EQ(model.qef(0).name(), "matching");
  EXPECT_EQ(model.qef(1).name(), "cardinality");
  EXPECT_EQ(model.qef(2).name(), "coverage");
  EXPECT_EQ(model.qef(3).name(), "redundancy");
  EXPECT_EQ(model.qef(4).name(), "char:mttf");
  EXPECT_DOUBLE_EQ(model.weight(0), 0.25);
  EXPECT_DOUBLE_EQ(model.weight(1), 0.25);
  EXPECT_DOUBLE_EQ(model.weight(2), 0.20);
  EXPECT_DOUBLE_EQ(model.weight(3), 0.15);
  EXPECT_DOUBLE_EQ(model.weight(4), 0.15);
  EXPECT_TRUE(model.ValidateWeights().ok());
  EXPECT_TRUE(model.NeedsMatching());
}

TEST(QualityModelTest, WeightValidation) {
  QualityModel model;
  EXPECT_FALSE(model.ValidateWeights().ok());  // no QEFs
  model.AddQef(std::make_unique<CardinalityQef>(), 0.6);
  EXPECT_FALSE(model.ValidateWeights().ok());  // sum != 1
  model.AddQef(std::make_unique<CoverageQef>(), 0.4);
  EXPECT_TRUE(model.ValidateWeights().ok());
  EXPECT_FALSE(model.SetWeights({0.5}).ok());        // wrong count
  EXPECT_FALSE(model.SetWeights({1.5, -0.5}).ok());  // out of range
  EXPECT_FALSE(model.SetWeights({0.9, 0.3}).ok());   // sum != 1
  EXPECT_TRUE(model.SetWeights({0.3, 0.7}).ok());
  EXPECT_DOUBLE_EQ(model.weight(0), 0.3);
}

TEST(QualityModelTest, FailedSetWeightsRollsBack) {
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 0.5);
  model.AddQef(std::make_unique<CoverageQef>(), 0.5);
  EXPECT_FALSE(model.SetWeights({0.9, 0.9}).ok());
  EXPECT_DOUBLE_EQ(model.weight(0), 0.5);  // unchanged
  EXPECT_TRUE(model.ValidateWeights().ok());
}

TEST(QualityModelTest, SetWeightRescalingKeepsSumOne) {
  QualityModel model = QualityModel::MakeDefault();
  ASSERT_TRUE(model.SetWeightRescaling("cardinality", 0.6).ok());
  EXPECT_DOUBLE_EQ(model.weight(1), 0.6);
  double sum = 0.0;
  for (int i = 0; i < model.num_qefs(); ++i) sum += model.weight(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Remaining weights keep their relative proportions (0.25 : 0.2 : ...).
  EXPECT_NEAR(model.weight(0) / model.weight(2), 0.25 / 0.20, 1e-9);
  EXPECT_FALSE(model.SetWeightRescaling("nope", 0.5).ok());
  EXPECT_FALSE(model.SetWeightRescaling("cardinality", 1.5).ok());
}

TEST(QualityModelTest, EvaluateIsWeightedSum) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 100));
  u.AddSource(MakeSource("B", 100, 100));
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 0.5);
  model.AddQef(std::make_unique<RedundancyQef>(), 0.5);
  std::vector<SourceId> sources = {0};
  EvalContext ctx = model.MakeContext(u, sources, nullptr);
  QualityBreakdown breakdown = model.Evaluate(ctx);
  EXPECT_TRUE(breakdown.feasible);
  ASSERT_EQ(breakdown.scores.size(), 2u);
  EXPECT_DOUBLE_EQ(breakdown.scores[0], 0.5);  // 100/200
  EXPECT_DOUBLE_EQ(breakdown.scores[1], 1.0);
  EXPECT_DOUBLE_EQ(breakdown.overall, 0.75);
}

TEST(QualityModelTest, InvalidMatchMakesCandidateInfeasible) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 100));
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 1.0);
  MatchResult match;
  match.valid = false;
  std::vector<SourceId> sources = {0};
  EvalContext ctx = model.MakeContext(u, sources, &match);
  QualityBreakdown breakdown = model.Evaluate(ctx);
  EXPECT_FALSE(breakdown.feasible);
  EXPECT_DOUBLE_EQ(breakdown.overall, 0.0);
}

TEST(QualityModelTest, FindQef) {
  QualityModel model = QualityModel::MakeDefault();
  EXPECT_EQ(model.FindQef("coverage"), 2);
  EXPECT_EQ(model.FindQef("missing"), -1);
}

TEST(QualityModelDeathTest, MatchingQefWithoutMatchAborts) {
  Universe u;
  u.AddSource(MakeSource("A", 0, 10));
  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), 1.0);
  std::vector<SourceId> sources = {0};
  EvalContext ctx = model.MakeContext(u, sources, nullptr);
  EXPECT_DEATH(model.Evaluate(ctx), "matching QEF");
}

}  // namespace
}  // namespace ube
