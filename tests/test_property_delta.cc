// Delta-vs-full differential oracle: the DeltaEvaluator's incremental
// scoring must be bit-identical to the full evaluation path — per QEF and
// for the composite Q(S) — after ANY seeded flip sequence, including
// add-then-remove round-trips and restart resets, across signature kinds
// (exact and PCSA), degradation policies and uncooperative sources. A
// second property pins cache/counter parity: an identical candidate stream
// scored through the delta path and through the full path must leave
// num_evaluations / num_cache_hits identical, so eval budgets stop at the
// same point. Replayable via UBE_PROPERTY_SEED / UBE_PROPERTY_ITERS (see
// TESTING.md).
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "optimize/delta_evaluator.h"
#include "optimize/evaluator.h"
#include "optimize/search_state.h"
#include "qef/quality_model.h"
#include "testkit/generators.h"
#include "testkit/property.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace ube {
namespace {

using testkit::PropertyRunner;

// One random instance: universe (optionally with degraded statistics and
// uncooperative sources), matcher scaffolding, a matching-free model under
// a random degradation policy, and a valid spec. Heap-allocated so the
// reference web (evaluator → universe/matcher/model/spec) stays stable.
struct Instance {
  Universe universe;
  std::unique_ptr<SimilarityGraph> graph;
  std::unique_ptr<ClusterMatcher> matcher;
  QualityModel model;
  ProblemSpec spec;
  std::unique_ptr<CandidateEvaluator> evaluator;

  explicit Instance(Universe u) : universe(std::move(u)) {}
};

std::unique_ptr<Instance> MakeInstance(Rng& rng, bool exact_signatures) {
  testkit::UniverseGenOptions gen;
  gen.exact_signatures = exact_signatures;
  gen.uncooperative_probability = 0.15;
  auto inst = std::make_unique<Instance>(testkit::GenerateUniverse(rng, gen));

  // Degrade some statistics so PolicyFor actually has cases to decide
  // (weights, admission, denominators) — fresh-only universes make every
  // policy a no-op.
  for (SourceId s = 0; s < inst->universe.num_sources(); ++s) {
    double roll = rng.UniformDouble();
    if (roll < 0.12) {
      inst->universe.mutable_source(s)->set_stats_state(
          StatsState::kStale, rng.UniformDouble() * 2.0);
    } else if (roll < 0.20) {
      inst->universe.mutable_source(s)->set_stats_state(StatsState::kPartial);
    } else if (roll < 0.25) {
      inst->universe.mutable_source(s)->set_stats_state(StatsState::kMissing);
    }
  }

  inst->graph = std::make_unique<SimilarityGraph>(
      inst->universe, MakeDefaultSimilarity(), 0.25);
  inst->matcher =
      std::make_unique<ClusterMatcher>(inst->universe, *inst->graph);
  inst->model = testkit::GenerateModel(rng, /*include_matching=*/false);
  DegradationOptions degradation;
  switch (rng.UniformInt(3)) {
    case 0:
      degradation.policy = DegradationPolicy::kPessimisticPrior;
      break;
    case 1:
      degradation.policy = DegradationPolicy::kLastKnownGood;
      break;
    default:
      degradation.policy = DegradationPolicy::kExcludeRenormalize;
      break;
  }
  inst->model.set_degradation(degradation);
  inst->spec = testkit::GenerateSpec(rng, inst->universe);
  inst->evaluator = std::make_unique<CandidateEvaluator>(
      inst->universe, *inst->matcher, inst->model, inst->spec);
  return inst;
}

// The inverse of `move` from the post-commit state: re-applying it lands
// back on the pre-commit candidate.
SearchState::Move Inverse(const SearchState::Move& move) {
  SearchState::Move inverse;
  switch (move.kind) {
    case SearchState::Move::Kind::kAdd:
      inverse.kind = SearchState::Move::Kind::kDrop;
      inverse.out = move.in;
      break;
    case SearchState::Move::Kind::kDrop:
      inverse.kind = SearchState::Move::Kind::kAdd;
      inverse.in = move.out;
      break;
    case SearchState::Move::Kind::kSwap:
      inverse.kind = SearchState::Move::Kind::kSwap;
      inverse.in = move.out;
      inverse.out = move.in;
      break;
  }
  return inverse;
}

// After any seeded flip sequence — with commits, add-then-remove
// round-trips and restart resets interleaved — the delta state must score
// every neighbor bit-identically to a from-scratch full evaluation, per
// QEF and composite. Odd cases use PCSA signatures (the prefix/suffix OR
// fast path), even cases exact signatures (the generic merge fallback).
TEST(DeltaPropertyTest, FlipSequencesAreBitIdenticalToFullRecompute) {
  PropertyRunner runner("delta-flip-bit-identity", 40);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    std::unique_ptr<Instance> inst = MakeInstance(rng, c % 2 == 0);
    DeltaEvaluator delta(*inst->evaluator, true);
    ASSERT_TRUE(delta.active())
        << "matching-free model must support the delta path";

    SearchState state(
        *inst->evaluator,
        testkit::GenerateCandidate(rng, inst->universe, inst->spec));
    const int flips = 24;
    for (int f = 0; f < flips; ++f) {
      if (f % 8 == 7) {
        // Restart semantics: a Reset (solver restart / incumbent jump)
        // must rebase cleanly.
        state.Reset(
            testkit::GenerateCandidate(rng, inst->universe, inst->spec));
      }
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) break;
      std::vector<SearchState::Move> moves = {move};
      std::vector<std::vector<SourceId>> neighbors = {state.Apply(move)};

      // Composite Q(S) through the incremental move path vs the full
      // path's uncached ground truth.
      std::vector<double> scored =
          delta.ScoreNeighborhood(state.sources(), moves, neighbors, nullptr);
      CandidateEvaluator::Evaluation full =
          inst->evaluator->Evaluate(neighbors[0]);
      EXPECT_EQ(scored[0], full.quality) << "flip " << f;

      // Per-QEF breakdown through the uncached delta probe.
      QualityBreakdown probe = delta.Compute(neighbors[0]);
      ASSERT_EQ(probe.scores.size(), full.breakdown.scores.size());
      for (size_t i = 0; i < probe.scores.size(); ++i) {
        EXPECT_EQ(probe.scores[i], full.breakdown.scores[i])
            << "flip " << f << " QEF " << inst->model.qef(static_cast<int>(i)).name();
      }
      EXPECT_EQ(probe.overall, full.breakdown.overall) << "flip " << f;

      if (rng.UniformDouble() < 0.5) {
        // Add-then-remove round trip: commit, score the inverse move from
        // the new base, and require bit-equality with the pre-commit
        // candidate's from-scratch quality.
        std::vector<SourceId> before = state.sources();
        double before_quality = delta.Compute(before).overall;
        state.Commit(move);
        SearchState::Move inverse = Inverse(move);
        std::vector<SearchState::Move> inverse_moves = {inverse};
        std::vector<std::vector<SourceId>> back = {state.Apply(inverse)};
        ASSERT_EQ(back[0], before);
        std::vector<double> round = delta.ScoreNeighborhood(
            state.sources(), inverse_moves, back, nullptr);
        EXPECT_EQ(round[0], before_quality)
            << "add-then-remove round trip diverged at flip " << f;
        EXPECT_EQ(round[0], inst->evaluator->Evaluate(before).quality);
      }
    }
  }
}

// Cache and counter parity: the same candidate stream — neighborhoods with
// intra-batch duplicates, plus arbitrary-candidate batches — scored through
// an active delta path on one evaluator and through the plain full path on
// a second, independent evaluator over the same instance must produce
// identical score vectors AND identical num_evaluations / num_cache_hits
// at every step. This is what makes max_evaluations budgets stop at the
// same point with delta on or off.
TEST(DeltaPropertyTest, CacheAndCounterParityWithFullPath) {
  PropertyRunner runner("delta-counter-parity", 25);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    std::unique_ptr<Instance> inst = MakeInstance(rng, c % 2 == 0);
    CandidateEvaluator full_eval(inst->universe, *inst->matcher, inst->model,
                                 inst->spec);
    DeltaEvaluator delta(*inst->evaluator, true);
    ASSERT_TRUE(delta.active());
    inst->evaluator->BeginRun();
    full_eval.BeginRun();

    SearchState state(
        *inst->evaluator,
        testkit::GenerateCandidate(rng, inst->universe, inst->spec));
    EXPECT_EQ(delta.Quality(state.sources()),
              full_eval.Quality(state.sources()));
    for (int round = 0; round < 12; ++round) {
      std::vector<SearchState::Move> moves;
      std::vector<std::vector<SourceId>> neighbors;
      for (int k = 0; k < 6; ++k) {
        SearchState::Move move;
        if (!state.RandomMove(rng, &move)) break;
        moves.push_back(move);
        neighbors.push_back(state.Apply(move));
        if (rng.UniformDouble() < 0.3) {
          // Duplicate entry: both paths must dedup it and count the
          // duplicate as a cache hit.
          moves.push_back(move);
          neighbors.push_back(neighbors.back());
        }
      }
      if (neighbors.empty()) break;
      std::vector<double> via_delta =
          delta.ScoreNeighborhood(state.sources(), moves, neighbors, nullptr);
      std::vector<double> via_full = full_eval.QualityBatch(neighbors);
      ASSERT_EQ(via_delta.size(), via_full.size());
      for (size_t i = 0; i < via_delta.size(); ++i) {
        EXPECT_EQ(via_delta[i], via_full[i]) << "round " << round;
      }
      EXPECT_EQ(inst->evaluator->num_evaluations(),
                full_eval.num_evaluations())
          << "round " << round;
      EXPECT_EQ(inst->evaluator->num_cache_hits(), full_eval.num_cache_hits())
          << "round " << round;
      state.Commit(moves[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(moves.size())))]);

      // Arbitrary-candidate batch (the PSO/greedy entry point).
      std::vector<std::vector<SourceId>> arbitrary;
      for (int k = 0; k < 4; ++k) {
        arbitrary.push_back(
            testkit::GenerateCandidate(rng, inst->universe, inst->spec));
      }
      std::vector<double> arb_delta = delta.ScoreCandidates(arbitrary, nullptr);
      std::vector<double> arb_full = full_eval.QualityBatch(arbitrary);
      for (size_t i = 0; i < arbitrary.size(); ++i) {
        EXPECT_EQ(arb_delta[i], arb_full[i]) << "round " << round;
      }
      EXPECT_EQ(inst->evaluator->num_evaluations(),
                full_eval.num_evaluations());
      EXPECT_EQ(inst->evaluator->num_cache_hits(), full_eval.num_cache_hits());
    }
  }
}

// Whole-model fallback: a model with a matching QEF cannot delta-evaluate,
// so the wrapper must go inactive and forward verbatim — identical
// qualities and counters to calling the evaluator directly.
TEST(DeltaPropertyTest, MatchingModelFallsBackToFullPath) {
  PropertyRunner runner("delta-matching-fallback", 10);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    testkit::UniverseGenOptions gen;
    auto inst = std::make_unique<Instance>(testkit::GenerateUniverse(rng, gen));
    inst->graph = std::make_unique<SimilarityGraph>(
        inst->universe, MakeDefaultSimilarity(), 0.25);
    inst->matcher =
        std::make_unique<ClusterMatcher>(inst->universe, *inst->graph);
    inst->model = testkit::GenerateModel(rng, /*include_matching=*/true);
    inst->spec = testkit::GenerateSpec(rng, inst->universe);
    inst->evaluator = std::make_unique<CandidateEvaluator>(
        inst->universe, *inst->matcher, inst->model, inst->spec);

    DeltaEvaluator delta(*inst->evaluator, true);
    EXPECT_FALSE(delta.active());
    std::vector<SourceId> candidate =
        testkit::GenerateCandidate(rng, inst->universe, inst->spec);
    EXPECT_EQ(delta.Quality(candidate), inst->evaluator->Quality(candidate));

    // The explicit off switch also forces forwarding mode.
    DeltaEvaluator disabled(*inst->evaluator, false);
    EXPECT_FALSE(disabled.active());
  }
}

}  // namespace
}  // namespace ube
