// Similarity-measure axioms over randomized attribute names.
//
// Every AttributeSimilarity must be symmetric, return 1 on identical
// inputs, and stay in [0, 1] (the interface contract the matcher relies
// on). Beyond the shared axioms, measure-specific theorems: n-gram Jaccard
// satisfies the Jaccard triangle bound (1 − J is a metric on n-gram sets),
// Jaro-Winkler never scores below plain Jaro (the prefix boost is
// non-negative), and HybridSimilarity's kMax is the pointwise max of its
// members and dominates kWeightedMean.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/change_feed.h"
#include "matching/similarity_graph.h"
#include "source/flaky.h"
#include "source/live_universe.h"
#include "testkit/generators.h"
#include "testkit/property.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace ube {
namespace {

using testkit::PropertyRunner;

// Attribute-name-shaped strings: realistic vocabulary variants, raw noise,
// mixed case/punctuation (normalization fodder), and edge cases.
std::string RandomName(Rng& rng) {
  static const char* kBases[] = {"title", "author", "price",  "isbn",
                                 "year",  "format", "rating", "pages"};
  static const char* kEdges[] = {"", " ", "_", "a", "Price ", "PRICE",
                                 "book title", "book_title", "price_usd"};
  switch (rng.UniformInt(4)) {
    case 0:
      return kBases[rng.UniformInt(8)];
    case 1: {  // decorated vocabulary variant
      std::string s = kBases[rng.UniformInt(8)];
      if (rng.Bernoulli(0.5)) s = "book_" + s;
      if (rng.Bernoulli(0.5)) s += "_id";
      if (rng.Bernoulli(0.3)) {
        for (char& ch : s) {
          if (rng.Bernoulli(0.5)) ch = static_cast<char>(std::toupper(ch));
        }
      }
      return s;
    }
    case 2: {  // pure noise
      std::string s;
      const int length = static_cast<int>(rng.UniformInt(1, 10));
      for (int i = 0; i < length; ++i) {
        s.push_back(static_cast<char>('a' + rng.UniformInt(26)));
      }
      return s;
    }
    default:
      return kEdges[rng.UniformInt(9)];
  }
}

std::vector<std::unique_ptr<AttributeSimilarity>> AllMeasures() {
  std::vector<std::unique_ptr<AttributeSimilarity>> measures;
  measures.push_back(std::make_unique<NgramJaccardSimilarity>(2));
  measures.push_back(std::make_unique<NgramJaccardSimilarity>(3));
  measures.push_back(std::make_unique<LevenshteinSimilarity>());
  measures.push_back(std::make_unique<JaroWinklerSimilarity>(0.1));
  measures.push_back(std::make_unique<JaroWinklerSimilarity>(0.0));
  measures.push_back(std::make_unique<TokenCosineSimilarity>());
  measures.push_back(MakeDefaultSimilarity());
  auto hybrid_max =
      std::make_unique<HybridSimilarity>(HybridSimilarity::Combine::kMax);
  hybrid_max->Add(std::make_unique<NgramJaccardSimilarity>(3));
  hybrid_max->Add(std::make_unique<JaroWinklerSimilarity>());
  measures.push_back(std::move(hybrid_max));
  auto hybrid_mean = std::make_unique<HybridSimilarity>(
      HybridSimilarity::Combine::kWeightedMean);
  hybrid_mean->Add(std::make_unique<NgramJaccardSimilarity>(3), 2.0);
  hybrid_mean->Add(std::make_unique<LevenshteinSimilarity>(), 1.0);
  measures.push_back(std::move(hybrid_mean));
  return measures;
}

TEST(SimilarityPropertyTest, SharedAxioms) {
  PropertyRunner runner("similarity-shared-axioms", 200);
  std::vector<std::unique_ptr<AttributeSimilarity>> measures = AllMeasures();
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const std::string a = RandomName(rng);
    const std::string b = RandomName(rng);
    for (const auto& measure : measures) {
      SCOPED_TRACE(std::string(measure->name()) + "(\"" + a + "\", \"" + b +
                   "\")");
      const double ab = measure->Score(a, b);
      // Range.
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      // Symmetry (exact: both directions walk the same code path).
      EXPECT_EQ(ab, measure->Score(b, a));
      // Identity.
      EXPECT_EQ(measure->Score(a, a), 1.0);
    }
  }
}

// 1 − Jaccard is a metric on sets, so on n-gram sets
// J(a, c) >= J(a, b) + J(b, c) − 1.
TEST(SimilarityPropertyTest, NgramJaccardTriangleBound) {
  PropertyRunner runner("ngram-jaccard-triangle", 300);
  NgramJaccardSimilarity bigram(2);
  NgramJaccardSimilarity trigram(3);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const std::string a = RandomName(rng);
    const std::string b = RandomName(rng);
    const std::string d = RandomName(rng);
    for (const NgramJaccardSimilarity* measure : {&bigram, &trigram}) {
      SCOPED_TRACE("n=" + std::to_string(measure->n()) + " a=\"" + a +
                   "\" b=\"" + b + "\" c=\"" + d + "\"");
      EXPECT_GE(measure->Score(a, d),
                measure->Score(a, b) + measure->Score(b, d) - 1.0 - 1e-12);
    }
  }
}

// The Winkler prefix boost adds prefix · scale · (1 − jaro) >= 0.
TEST(SimilarityPropertyTest, WinklerBoostNeverBelowPlainJaro) {
  PropertyRunner runner("winkler-dominates-jaro", 300);
  JaroWinklerSimilarity winkler(0.1);
  JaroWinklerSimilarity plain(0.0);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const std::string a = RandomName(rng);
    const std::string b = RandomName(rng);
    SCOPED_TRACE("a=\"" + a + "\" b=\"" + b + "\"");
    EXPECT_GE(winkler.Score(a, b), plain.Score(a, b) - 1e-12);
  }
}

// HybridSimilarity laws: kMax is exactly the member max; kWeightedMean lies
// within the member range (hence kMax dominates it for the same members).
TEST(SimilarityPropertyTest, HybridCombinatorLaws) {
  PropertyRunner runner("hybrid-combinators", 200);
  NgramJaccardSimilarity trigram(3);
  JaroWinklerSimilarity winkler(0.1);
  TokenCosineSimilarity cosine;

  HybridSimilarity as_max(HybridSimilarity::Combine::kMax);
  as_max.Add(std::make_unique<NgramJaccardSimilarity>(3));
  as_max.Add(std::make_unique<JaroWinklerSimilarity>(0.1));
  as_max.Add(std::make_unique<TokenCosineSimilarity>());

  HybridSimilarity as_mean(HybridSimilarity::Combine::kWeightedMean);
  as_mean.Add(std::make_unique<NgramJaccardSimilarity>(3), 0.5);
  as_mean.Add(std::make_unique<JaroWinklerSimilarity>(0.1), 1.5);
  as_mean.Add(std::make_unique<TokenCosineSimilarity>(), 1.0);

  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const std::string a = RandomName(rng);
    const std::string b = RandomName(rng);
    SCOPED_TRACE("a=\"" + a + "\" b=\"" + b + "\"");
    const double s1 = trigram.Score(a, b);
    const double s2 = winkler.Score(a, b);
    const double s3 = cosine.Score(a, b);
    const double lo = std::min({s1, s2, s3});
    const double hi = std::max({s1, s2, s3});

    EXPECT_DOUBLE_EQ(as_max.Score(a, b), hi);
    const double mean = as_mean.Score(a, b);
    EXPECT_GE(mean, lo - 1e-12);
    EXPECT_LE(mean, hi + 1e-12);
    EXPECT_GE(as_max.Score(a, b), mean - 1e-12);
  }
}

// The live-universe maintenance contract: after every churn event, the
// incrementally patched similarity graph is byte-identical (same
// Fingerprint, which hashes offsets, attribute ids, names, edge targets and
// raw similarity bits) to a graph rebuilt from scratch over the mutated
// universe. Exercised across >= 50 seeded churn traces, on both the n-gram
// fast path and the generic-measure path.
TEST(SimilarityPropertyTest, PatchedGraphMatchesRebuildUnderChurn) {
  PropertyRunner runner("graph-patch-vs-rebuild", 50);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    testkit::UniverseGenOptions gen;
    gen.min_sources = 5;
    gen.max_sources = 10;
    Universe universe = testkit::GenerateUniverse(rng, gen);

    ChurnFeedConfig config;
    config.seed = rng.Next64();
    config.events_per_sec = 2.0;
    config.horizon_ms = 8'000.0;  // ~16 events per trace
    ChurnTrace trace = GenerateChurnTrace(universe, config).value();

    // Alternate between the default 3-gram measure (precomputed n-gram
    // sets) and an edit-distance measure (generic path).
    const bool ngram = rng.Bernoulli(0.5);
    auto make_measure = [ngram]() -> std::unique_ptr<AttributeSimilarity> {
      if (ngram) return MakeDefaultSimilarity();
      return std::make_unique<JaroWinklerSimilarity>(0.1);
    };
    LiveUniverse::Options live_options;
    live_options.similarity = make_measure();
    LiveUniverse live(CloneUniverse(universe), std::move(live_options));
    ASSERT_EQ(live.graph().Fingerprint(),
              SimilarityGraph(live.universe(), make_measure(), 0.25)
                  .Fingerprint());
    int step = 0;
    for (const ChurnEvent& event : trace.events) {
      SCOPED_TRACE("event " + std::to_string(step++) + " kind " +
                   std::to_string(static_cast<int>(event.kind)) + " source " +
                   std::to_string(event.source));
      ASSERT_TRUE(live.Apply(event).ok());
      SimilarityGraph rebuilt(live.universe(), make_measure(), 0.25);
      ASSERT_EQ(live.graph().Fingerprint(), rebuilt.Fingerprint());
    }
  }
}

}  // namespace
}  // namespace ube
