#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "workload/books_repository.h"
#include "workload/generator.h"

namespace ube {
namespace {

WorkloadConfig FastConfig(int num_sources = 60, uint64_t seed = 17) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.seed = seed;
  config.scale = 0.001;  // 10-1000 tuples per source, pools of 2000
  return config;
}

// ---------------------------- BooksRepository ----------------------------

TEST(BooksRepositoryTest, FourteenConceptsFiftySchemas) {
  BooksRepository repo;
  EXPECT_EQ(repo.num_concepts(), 14);
  EXPECT_EQ(repo.num_base_schemas(), 50);
}

TEST(BooksRepositoryTest, SchemaSizesInRange) {
  BooksRepository repo;
  for (const SourceSchema& schema : repo.base_schemas()) {
    EXPECT_GE(schema.num_attributes(), 3);
    EXPECT_LE(schema.num_attributes(), 8);
  }
}

TEST(BooksRepositoryTest, SchemasAreStableAcrossInstances) {
  BooksRepository a, b;
  for (int i = 0; i < a.num_base_schemas(); ++i) {
    EXPECT_EQ(a.base_schemas()[i], b.base_schemas()[i]);
  }
}

TEST(BooksRepositoryTest, NoDuplicateAttributesWithinSchema) {
  BooksRepository repo;
  for (const SourceSchema& schema : repo.base_schemas()) {
    std::set<std::string> names(schema.names().begin(),
                                schema.names().end());
    EXPECT_EQ(names.size(), schema.names().size());
  }
}

TEST(BooksRepositoryTest, EveryAttributeMapsToAConcept) {
  BooksRepository repo;
  for (const SourceSchema& schema : repo.base_schemas()) {
    for (const std::string& name : schema.names()) {
      EXPECT_GE(repo.ConceptOf(name), 0) << name;
    }
  }
}

TEST(BooksRepositoryTest, VariantsMapToTheirConcept) {
  BooksRepository repo;
  for (int c = 0; c < repo.num_concepts(); ++c) {
    for (const std::string& variant : repo.concepts()[c].variants) {
      EXPECT_EQ(repo.ConceptOf(variant), c) << variant;
    }
  }
  EXPECT_EQ(repo.ConceptOf("horsepower"), -1);
  EXPECT_EQ(repo.ConceptOf("Title"), -1);  // exact match
}

TEST(BooksRepositoryTest, VariantsUniqueAcrossConcepts) {
  BooksRepository repo;
  std::set<std::string> all;
  for (const DomainConcept& concept_def : repo.concepts()) {
    for (const std::string& variant : concept_def.variants) {
      EXPECT_TRUE(all.insert(variant).second)
          << "variant reused across concepts: " << variant;
    }
  }
}

TEST(BooksRepositoryTest, UnrelatedWordsDisjointFromVariants) {
  BooksRepository repo;
  for (const std::string& word : BooksRepository::UnrelatedWords()) {
    EXPECT_EQ(repo.ConceptOf(word), -1) << word;
  }
  EXPECT_GE(BooksRepository::UnrelatedWords().size(), 50u);
}

TEST(BooksRepositoryTest, AllConceptsUsedSomewhere) {
  BooksRepository repo;
  std::set<int> used;
  for (const SourceSchema& schema : repo.base_schemas()) {
    for (const std::string& name : schema.names()) {
      used.insert(repo.ConceptOf(name));
    }
  }
  EXPECT_EQ(used.size(), 14u);  // every concept appears in the repository
}

// ------------------------------ generator --------------------------------

TEST(GeneratorTest, ProducesRequestedSourceCount) {
  GeneratedWorkload w = GenerateWorkload(FastConfig(37));
  EXPECT_EQ(w.universe.num_sources(), 37);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratedWorkload a = GenerateWorkload(FastConfig(40, 5));
  GeneratedWorkload b = GenerateWorkload(FastConfig(40, 5));
  for (SourceId s = 0; s < 40; ++s) {
    EXPECT_EQ(a.universe.source(s).schema(), b.universe.source(s).schema());
    EXPECT_EQ(a.universe.source(s).cardinality(),
              b.universe.source(s).cardinality());
    EXPECT_EQ(a.universe.source(s).GetCharacteristic(kMttfCharacteristic),
              b.universe.source(s).GetCharacteristic(kMttfCharacteristic));
  }
  EXPECT_DOUBLE_EQ(a.universe.UnionCardinalityEstimate(),
                   b.universe.UnionCardinalityEstimate());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratedWorkload a = GenerateWorkload(FastConfig(60, 1));
  GeneratedWorkload b = GenerateWorkload(FastConfig(60, 2));
  int differing = 0;
  for (SourceId s = 50; s < 60; ++s) {  // perturbed region
    if (!(a.universe.source(s).schema() == b.universe.source(s).schema())) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(GeneratorTest, FirstFiftyAreExactBaseCopies) {
  BooksRepository repo;
  GeneratedWorkload w = GenerateWorkload(FastConfig(60));
  for (SourceId s = 0; s < 50; ++s) {
    EXPECT_EQ(w.universe.source(s).schema(),
              repo.base_schemas()[static_cast<size_t>(s)]);
  }
}

TEST(GeneratorTest, CardinalitiesWithinScaledRange) {
  WorkloadConfig config = FastConfig(80);
  GeneratedWorkload w = GenerateWorkload(config);
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    int64_t card = w.universe.source(s).cardinality();
    EXPECT_GE(card, 10);    // 10'000 * 0.001
    EXPECT_LE(card, 1000);  // 1'000'000 * 0.001
  }
}

TEST(GeneratorTest, SignaturesPresentAndPlausible) {
  GeneratedWorkload w = GenerateWorkload(FastConfig(30));
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    const DataSource& source = w.universe.source(s);
    ASSERT_TRUE(source.has_signature());
    // PCSA estimate should be within a loose factor of the cardinality
    // (tuples are distinct by construction of the stride walk, but capped
    // by the pool size).
    double est = source.signature().Estimate();
    EXPECT_GT(est, 0.0);
  }
  EXPECT_GT(w.universe.UnionCardinalityEstimate(), 0.0);
}

TEST(GeneratorTest, ExactSignaturesMatchCardinalityWhenPoolLarge) {
  WorkloadConfig config = FastConfig(20);
  config.signature_kind = SignatureKind::kExact;
  config.scale = 0.01;  // pools 20k, cards 100..10k
  GeneratedWorkload w = GenerateWorkload(config);
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    const DataSource& source = w.universe.source(s);
    // Stride walk gives distinct ids, so distinct count == cardinality
    // (each pool portion is drawn without replacement).
    EXPECT_DOUBLE_EQ(source.signature().Estimate(),
                     static_cast<double>(source.cardinality()));
  }
}

TEST(GeneratorTest, UncooperativeFractionRespected) {
  WorkloadConfig config = FastConfig(200);
  config.uncooperative_fraction = 0.3;
  GeneratedWorkload w = GenerateWorkload(config);
  int uncooperative = 0;
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    if (!w.universe.source(s).has_signature()) ++uncooperative;
  }
  EXPECT_NEAR(uncooperative / 200.0, 0.3, 0.12);
}

TEST(GeneratorTest, NoDataModeSkipsSignatures) {
  WorkloadConfig config = FastConfig(10);
  config.generate_data = false;
  GeneratedWorkload w = GenerateWorkload(config);
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    EXPECT_FALSE(w.universe.source(s).has_signature());
    EXPECT_GT(w.universe.source(s).cardinality(), 0);
  }
}

TEST(GeneratorTest, MttfPositiveAndPlausible) {
  GeneratedWorkload w = GenerateWorkload(FastConfig(300));
  double sum = 0.0;
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    auto mttf = w.universe.source(s).GetCharacteristic(kMttfCharacteristic);
    ASSERT_TRUE(mttf.has_value());
    EXPECT_GT(*mttf, 0.0);
    sum += *mttf;
  }
  EXPECT_NEAR(sum / 300.0, 100.0, 10.0);  // mean 100, stddev 40
}

TEST(GeneratorTest, GroundTruthConsistentWithRepository) {
  BooksRepository repo;
  GeneratedWorkload w = GenerateWorkload(FastConfig(80));
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    const SourceSchema& schema = w.universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      int expected = repo.ConceptOf(schema.attribute_name(a));
      EXPECT_EQ(w.ground_truth.ConceptOf(AttributeId{s, a}), expected);
    }
  }
  EXPECT_EQ(w.ground_truth.num_concepts(), 14);
  EXPECT_EQ(w.ground_truth.concept_name(0), "title");
}

TEST(GeneratorTest, NoiseNamesUniqueAcrossUniverse) {
  GeneratedWorkload w = GenerateWorkload(FastConfig(300));
  std::unordered_set<std::string> noise_names;
  for (SourceId s = 0; s < w.universe.num_sources(); ++s) {
    const SourceSchema& schema = w.universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (w.ground_truth.ConceptOf(AttributeId{s, a}) == -1) {
        EXPECT_TRUE(noise_names.insert(schema.attribute_name(a)).second)
            << "duplicate noise name: " << schema.attribute_name(a);
      }
    }
  }
  EXPECT_GT(noise_names.size(), 0u);  // perturbation does add noise
}

TEST(GeneratorTest, ConceptsAvailable) {
  GeneratedWorkload w = GenerateWorkload(FastConfig(60));
  // Over all 60 sources, every concept should be available (in >= 2).
  std::vector<SourceId> all = w.universe.AllIds();
  EXPECT_EQ(w.ground_truth.ConceptsAvailable(all, 2).size(), 14u);
  // Over a single source, nothing reaches the >= 2 source threshold.
  EXPECT_TRUE(w.ground_truth.ConceptsAvailable({0}, 2).empty());
  // min_sources = 1 over one source: exactly its own concepts.
  std::vector<int> own = w.ground_truth.ConceptsAvailable({0}, 1);
  EXPECT_FALSE(own.empty());
  EXPECT_LE(own.size(), 8u);
}

TEST(GeneratorTest, PerturbationRatesRoughlyRespected) {
  WorkloadConfig config = FastConfig(1000);
  config.generate_data = false;
  GeneratedWorkload w = GenerateWorkload(config);
  BooksRepository repo;
  int64_t base_attrs = 0, surviving_original = 0, noise = 0;
  for (SourceId s = 50; s < w.universe.num_sources(); ++s) {
    const SourceSchema& base =
        repo.base_schemas()[static_cast<size_t>(s % 50)];
    base_attrs += base.num_attributes();
    const SourceSchema& schema = w.universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (w.ground_truth.ConceptOf(AttributeId{s, a}) >= 0) {
        ++surviving_original;
      } else {
        ++noise;
      }
    }
  }
  // Survive rate ~ (1 - p_remove) * (1 - p_replace) = 0.81.
  double survive_rate =
      static_cast<double>(surviving_original) / static_cast<double>(base_attrs);
  EXPECT_NEAR(survive_rate, 0.81, 0.04);
  // Noise per source ~ replace (0.9*0.1*avg_attrs) + added geometric.
  EXPECT_GT(noise, 0);
}

}  // namespace
}  // namespace ube
