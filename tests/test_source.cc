#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "sketch/distinct_estimator.h"
#include "source/data_source.h"
#include "source/universe.h"

namespace ube {
namespace {

DataSource MakeSource(const std::string& name, int64_t cardinality,
                      uint64_t first_id = 0, uint64_t count = 0) {
  DataSource s(name, SourceSchema({"title"}));
  s.set_cardinality(cardinality);
  if (count > 0) {
    auto sig = std::make_unique<ExactSignature>();
    for (uint64_t i = first_id; i < first_id + count; ++i) sig->Add(i);
    s.set_signature(std::move(sig));
  }
  return s;
}

// ------------------------------ DataSource -------------------------------

TEST(DataSourceTest, BasicFields) {
  DataSource s("shop.example", SourceSchema({"title", "price"}));
  EXPECT_EQ(s.name(), "shop.example");
  EXPECT_EQ(s.schema().num_attributes(), 2);
  EXPECT_EQ(s.cardinality(), 0);
  s.set_cardinality(42);
  EXPECT_EQ(s.cardinality(), 42);
  EXPECT_FALSE(s.has_signature());
}

TEST(DataSourceTest, CharacteristicsOverwriteAndLookup) {
  DataSource s("x", SourceSchema({"a"}));
  EXPECT_EQ(s.GetCharacteristic("mttf"), std::nullopt);
  s.SetCharacteristic("mttf", 10.0);
  s.SetCharacteristic("latency", 3.5);
  EXPECT_EQ(s.GetCharacteristic("mttf"), 10.0);
  s.SetCharacteristic("mttf", 20.0);  // overwrite
  EXPECT_EQ(s.GetCharacteristic("mttf"), 20.0);
  EXPECT_EQ(s.characteristics().size(), 2u);
}

TEST(DataSourceDeathTest, SignatureOnUncooperativeSourceAborts) {
  DataSource s("x", SourceSchema({"a"}));
  EXPECT_DEATH(s.signature(), "non-cooperating");
}

TEST(DataSourceTest, MutableSchema) {
  DataSource s("x", SourceSchema({"a"}));
  *s.mutable_schema() = SourceSchema({"a", "b"});
  EXPECT_EQ(s.schema().num_attributes(), 2);
}

// ------------------------------- Universe --------------------------------

TEST(UniverseTest, AddAndAccess) {
  Universe u;
  EXPECT_TRUE(u.empty());
  SourceId a = u.AddSource(MakeSource("a", 10));
  SourceId b = u.AddSource(MakeSource("b", 20));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(u.num_sources(), 2);
  EXPECT_FALSE(u.empty());
  EXPECT_EQ(u.source(0).name(), "a");
  EXPECT_EQ(u.TotalCardinality(), 30);
  EXPECT_EQ(u.AllIds(), (std::vector<SourceId>{0, 1}));
}

TEST(UniverseTest, FindByName) {
  Universe u;
  u.AddSource(MakeSource("alpha", 1));
  u.AddSource(MakeSource("beta", 1));
  Result<SourceId> found = u.FindByName("beta");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1);
  EXPECT_EQ(u.FindByName("gamma").status().code(), StatusCode::kNotFound);
}

TEST(UniverseTest, FindByNameReturnsFirstMatch) {
  Universe u;
  u.AddSource(MakeSource("dup", 1));
  u.AddSource(MakeSource("dup", 2));
  Result<SourceId> found = u.FindByName("dup");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0);
}

TEST(UniverseTest, UnionSignatureOverCooperatingSources) {
  Universe u;
  u.AddSource(MakeSource("a", 10, 0, 10));    // ids [0, 10)
  u.AddSource(MakeSource("b", 10, 5, 10));    // ids [5, 15)
  u.AddSource(MakeSource("n", 10));           // uncooperative
  const DistinctSignature* sig = u.UnionSignature();
  ASSERT_NE(sig, nullptr);
  EXPECT_DOUBLE_EQ(sig->Estimate(), 15.0);
  EXPECT_DOUBLE_EQ(u.UnionCardinalityEstimate(), 15.0);
}

TEST(UniverseTest, UnionSignatureNullWhenNoneCooperate) {
  Universe u;
  u.AddSource(MakeSource("a", 10));
  EXPECT_EQ(u.UnionSignature(), nullptr);
  EXPECT_DOUBLE_EQ(u.UnionCardinalityEstimate(), 0.0);
}

TEST(UniverseTest, UnionSignatureInvalidatedByAddSource) {
  Universe u;
  u.AddSource(MakeSource("a", 10, 0, 10));
  EXPECT_DOUBLE_EQ(u.UnionCardinalityEstimate(), 10.0);
  u.AddSource(MakeSource("b", 10, 100, 5));
  EXPECT_DOUBLE_EQ(u.UnionCardinalityEstimate(), 15.0);  // cache refreshed
}

TEST(UniverseTest, UnionSignatureInvalidatedByMutableAccess) {
  Universe u;
  u.AddSource(MakeSource("a", 10, 0, 10));
  EXPECT_DOUBLE_EQ(u.UnionCardinalityEstimate(), 10.0);
  // Replace the signature through mutable_source; the cached union must be
  // recomputed on next use.
  auto sig = std::make_unique<ExactSignature>();
  for (uint64_t i = 0; i < 3; ++i) sig->Add(i);
  u.mutable_source(0)->set_signature(std::move(sig));
  EXPECT_DOUBLE_EQ(u.UnionCardinalityEstimate(), 3.0);
}

TEST(UniverseDeathTest, OutOfRangeAccess) {
  Universe u;
  u.AddSource(MakeSource("a", 1));
  EXPECT_DEATH(u.source(1), "out of range");
  EXPECT_DEATH(u.source(-1), "out of range");
  EXPECT_DEATH(u.mutable_source(1), "out of range");
}

TEST(UniverseTest, EmptyUniverseAggregates) {
  Universe u;
  EXPECT_EQ(u.TotalCardinality(), 0);
  EXPECT_EQ(u.UnionSignature(), nullptr);
  EXPECT_TRUE(u.AllIds().empty());
}

}  // namespace
}  // namespace ube
