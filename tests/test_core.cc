#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/ga_evaluation.h"
#include "core/report.h"
#include "core/session.h"
#include "workload/generator.h"

namespace ube {
namespace {

WorkloadConfig SmallConfig(int num_sources = 40, uint64_t seed = 17) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.seed = seed;
  config.scale = 0.001;
  return config;
}

SolverOptions FastSolve(uint64_t seed = 42) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 120;
  options.stall_iterations = 30;
  return options;
}

Engine MakeEngine(int num_sources = 40, uint64_t seed = 17) {
  GeneratedWorkload w = GenerateWorkload(SmallConfig(num_sources, seed));
  return Engine(std::move(w.universe), QualityModel::MakeDefault());
}

// ------------------------------- Engine ---------------------------------

TEST(EngineTest, SolveProducesFeasibleSolution) {
  Engine engine = MakeEngine();
  ProblemSpec spec;
  spec.max_sources = 8;
  Result<Solution> solution = engine.Solve(spec, SolverKind::kTabu,
                                           FastSolve());
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_LE(solution->sources.size(), 8u);
  EXPECT_GE(solution->sources.size(), 1u);
  EXPECT_GT(solution->quality, 0.0);
  EXPECT_TRUE(solution->mediated_schema.GasAreDisjointAndValid());
  EXPECT_EQ(solution->breakdown.scores.size(), 5u);
}

TEST(EngineTest, SolveValidatesSpec) {
  Engine engine = MakeEngine();
  ProblemSpec spec;
  spec.max_sources = 0;
  EXPECT_FALSE(engine.Solve(spec).ok());
  spec.max_sources = 5;
  spec.theta = 0.1;  // below the default similarity floor 0.25
  EXPECT_FALSE(engine.Solve(spec).ok());
}

TEST(EngineTest, InfeasibleConstraintsReported) {
  Engine engine = MakeEngine();
  ProblemSpec spec;
  spec.max_sources = 1;
  spec.source_constraints = {0, 1};
  Result<Solution> r = engine.Solve(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST(EngineTest, SourceConstraintsAppearInSolution) {
  Engine engine = MakeEngine();
  ProblemSpec spec;
  spec.max_sources = 6;
  spec.source_constraints = {3, 7};
  Result<Solution> solution = engine.Solve(spec, SolverKind::kTabu,
                                           FastSolve());
  ASSERT_TRUE(solution.ok());
  for (SourceId required : {3, 7}) {
    EXPECT_TRUE(std::binary_search(solution->sources.begin(),
                                   solution->sources.end(), required));
  }
}

TEST(EngineTest, EvaluateCandidateScoresUserSet) {
  Engine engine = MakeEngine();
  ProblemSpec spec;
  spec.max_sources = 5;
  Result<CandidateEvaluator::Evaluation> eval =
      engine.EvaluateCandidate(spec, {0, 1, 2});
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GT(eval->quality, 0.0);
  // Unsorted and duplicate inputs are normalized.
  Result<CandidateEvaluator::Evaluation> same =
      engine.EvaluateCandidate(spec, {2, 0, 1, 1});
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(eval->quality, same->quality);
  // Too many sources rejected.
  EXPECT_FALSE(engine.EvaluateCandidate(spec, {0, 1, 2, 3, 4, 5}).ok());
  // Candidate must include constrained sources.
  spec.source_constraints = {9};
  EXPECT_FALSE(engine.EvaluateCandidate(spec, {0, 1}).ok());
}

TEST(EngineTest, MatchSourcesRunsMatcherOnly) {
  Engine engine = MakeEngine();
  ProblemSpec spec;
  Result<MatchResult> match = engine.MatchSources(spec, {0, 1, 2, 3, 4});
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(match->valid);
  EXPECT_GT(match->schema.num_gas(), 0);
}

TEST(EngineTest, CustomSimilarityMeasure) {
  GeneratedWorkload w = GenerateWorkload(SmallConfig(20));
  Engine::Options options;
  options.similarity = std::make_unique<LevenshteinSimilarity>();
  options.similarity_floor = 0.3;
  Engine engine(std::move(w.universe), QualityModel::MakeDefault(),
                std::move(options));
  EXPECT_EQ(engine.similarity_graph().measure().name(), "levenshtein");
  ProblemSpec spec;
  spec.max_sources = 5;
  EXPECT_TRUE(engine.Solve(spec, SolverKind::kTabu, FastSolve()).ok());
}

// ------------------------------- Session --------------------------------

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : engine_(MakeEngine()), session_(&engine_) {
    session_.SetMaxSources(6);
  }

  Engine engine_;
  Session session_;
};

TEST_F(SessionTest, IterateRecordsHistory) {
  EXPECT_EQ(session_.last(), nullptr);
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  EXPECT_EQ(session_.num_iterations(), 1);
  ASSERT_NE(session_.last(), nullptr);
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve(43)).ok());
  EXPECT_EQ(session_.num_iterations(), 2);
}

TEST_F(SessionTest, FailedIterateLeavesHistoryIntact) {
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  ASSERT_NE(session_.last(), nullptr);
  const Solution before = *session_.last();
  const std::string report_before = session_.ReportLast();

  // Make the spec infeasible mid-session (more pins than slots) and solve.
  session_.SetMaxSources(1);
  ASSERT_TRUE(session_.PinSource(0).ok());
  ASSERT_TRUE(session_.PinSource(1).ok());
  Result<Solution> failed = session_.Iterate(SolverKind::kTabu, FastSolve());
  ASSERT_FALSE(failed.ok());

  // The failed solve must not leave a half-appended history entry:
  // last()/ReportLast() still answer from the previous solution.
  EXPECT_EQ(session_.num_iterations(), 1);
  ASSERT_NE(session_.last(), nullptr);
  EXPECT_EQ(session_.last()->sources, before.sources);
  EXPECT_EQ(session_.last()->quality, before.quality);
  EXPECT_EQ(session_.ReportLast(), report_before);
  EXPECT_EQ(session_.stats().failed_solves, 1);
  EXPECT_EQ(session_.stats().iterations, 1);

  // Undo the damage and the loop keeps going.
  session_.SetMaxSources(6);
  EXPECT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  EXPECT_EQ(session_.num_iterations(), 2);
}

TEST_F(SessionTest, PinSourceForcesItIntoNextSolution) {
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  // Pin a source the first solution did not pick.
  SourceId pinned = -1;
  for (SourceId s = 0; s < engine_.universe().num_sources(); ++s) {
    if (!std::binary_search(session_.last()->sources.begin(),
                            session_.last()->sources.end(), s)) {
      pinned = s;
      break;
    }
  }
  ASSERT_NE(pinned, -1);
  ASSERT_TRUE(session_.PinSource(pinned).ok());
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  EXPECT_TRUE(std::binary_search(session_.last()->sources.begin(),
                                 session_.last()->sources.end(), pinned));
}

TEST_F(SessionTest, PinByNameAndUnpin) {
  ASSERT_TRUE(session_.PinSourceByName("books-src-5").ok());
  EXPECT_EQ(session_.spec().source_constraints,
            (std::vector<SourceId>{5}));
  ASSERT_TRUE(session_.PinSource(5).ok());  // idempotent
  EXPECT_EQ(session_.spec().source_constraints.size(), 1u);
  EXPECT_FALSE(session_.PinSourceByName("no-such-source").ok());
  ASSERT_TRUE(session_.UnpinSource(5).ok());
  EXPECT_TRUE(session_.spec().source_constraints.empty());
  EXPECT_FALSE(session_.UnpinSource(5).ok());
}

TEST_F(SessionTest, BanSourceExcludesItFromNextSolution) {
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  ASSERT_FALSE(session_.last()->sources.empty());
  SourceId victim = session_.last()->sources.front();
  ASSERT_TRUE(session_.BanSource(victim).ok());
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  EXPECT_FALSE(std::binary_search(session_.last()->sources.begin(),
                                  session_.last()->sources.end(), victim));
}

TEST_F(SessionTest, BanPinInteraction) {
  ASSERT_TRUE(session_.PinSource(3).ok());
  EXPECT_FALSE(session_.BanSource(3).ok());  // pinned -> cannot ban
  ASSERT_TRUE(session_.UnpinSource(3).ok());
  ASSERT_TRUE(session_.BanSource(3).ok());
  EXPECT_FALSE(session_.PinSource(3).ok());  // banned -> cannot pin
  ASSERT_TRUE(session_.BanSource(3).ok());   // idempotent
  EXPECT_EQ(session_.spec().banned_sources.size(), 1u);
  ASSERT_TRUE(session_.UnbanSource(3).ok());
  EXPECT_FALSE(session_.UnbanSource(3).ok());
  ASSERT_TRUE(session_.PinSource(3).ok());
}

TEST_F(SessionTest, BanSourceInGaConstraintRejected) {
  ASSERT_TRUE(
      session_.AddGaConstraint(GlobalAttribute({AttributeId{2, 0}})).ok());
  EXPECT_FALSE(session_.BanSource(2).ok());
}

TEST_F(SessionTest, BanByNameAndClear) {
  ASSERT_TRUE(session_.BanSourceByName("books-src-9").ok());
  EXPECT_EQ(session_.spec().banned_sources, (std::vector<SourceId>{9}));
  EXPECT_FALSE(session_.BanSourceByName("nope").ok());
  session_.ClearConstraints();
  EXPECT_TRUE(session_.spec().banned_sources.empty());
}

TEST_F(SessionTest, PromoteGaSubsumedByNextSolution) {
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  ASSERT_GT(session_.last()->mediated_schema.num_gas(), 0);
  GlobalAttribute promoted = session_.last()->mediated_schema.ga(0);
  ASSERT_TRUE(session_.PromoteGa(0).ok());
  ASSERT_EQ(session_.spec().ga_constraints.size(), 1u);
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve(91)).ok());
  MediatedSchema g({promoted});
  EXPECT_TRUE(g.IsSubsumedBy(session_.last()->mediated_schema));
}

TEST_F(SessionTest, PromoteGaValidation) {
  EXPECT_FALSE(session_.PromoteGa(0).ok());  // no solution yet
  ASSERT_TRUE(session_.Iterate(SolverKind::kTabu, FastSolve()).ok());
  EXPECT_FALSE(session_.PromoteGa(-1).ok());
  EXPECT_FALSE(session_.PromoteGa(999).ok());
}

TEST_F(SessionTest, AddGaConstraintAbsorbsSubsets) {
  GlobalAttribute small({AttributeId{0, 0}, AttributeId{1, 0}});
  GlobalAttribute big({AttributeId{0, 0}, AttributeId{1, 0},
                       AttributeId{2, 0}});
  ASSERT_TRUE(session_.AddGaConstraint(small).ok());
  ASSERT_TRUE(session_.AddGaConstraint(big).ok());
  ASSERT_EQ(session_.spec().ga_constraints.size(), 1u);
  EXPECT_EQ(session_.spec().ga_constraints[0], big);
}

TEST_F(SessionTest, AddGaConstraintRejectsPartialOverlap) {
  GlobalAttribute a({AttributeId{0, 0}, AttributeId{1, 0}});
  GlobalAttribute overlapping({AttributeId{1, 0}, AttributeId{2, 0}});
  ASSERT_TRUE(session_.AddGaConstraint(a).ok());
  EXPECT_FALSE(session_.AddGaConstraint(overlapping).ok());
  EXPECT_EQ(session_.spec().ga_constraints.size(), 1u);
}

TEST_F(SessionTest, AddGaConstraintValidatesIds) {
  EXPECT_FALSE(session_.AddGaConstraint(GlobalAttribute{}).ok());
  EXPECT_FALSE(
      session_.AddGaConstraint(GlobalAttribute({AttributeId{999, 0}})).ok());
  EXPECT_FALSE(
      session_.AddGaConstraint(GlobalAttribute({AttributeId{0, 999}})).ok());
}

TEST_F(SessionTest, AddGaConstraintByNames) {
  const SourceSchema& s0 = engine_.universe().source(0).schema();
  const SourceSchema& s1 = engine_.universe().source(1).schema();
  ASSERT_GT(s0.num_attributes(), 0);
  ASSERT_GT(s1.num_attributes(), 0);
  Status status = session_.AddGaConstraintByNames(
      {{"books-src-0", s0.attribute_name(0)},
       {"books-src-1", s1.attribute_name(0)}});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(session_.spec().ga_constraints.size(), 1u);
  EXPECT_FALSE(session_
                   .AddGaConstraintByNames(
                       {{"books-src-0", "definitely not an attribute"}})
                   .ok());
  EXPECT_FALSE(
      session_.AddGaConstraintByNames({{"nope", "title"}}).ok());
}

TEST_F(SessionTest, SetWeightEditsOverlayNotModel) {
  int idx = engine_.quality_model().FindQef("cardinality");
  const double model_weight_before = engine_.quality_model().weight(idx);
  ASSERT_TRUE(session_.SetWeight("cardinality", 0.7).ok());
  // The reweight lands in the session's overlay; the engine's shared model
  // is untouched (other sessions keep their own weights).
  EXPECT_DOUBLE_EQ(engine_.quality_model().weight(idx), model_weight_before);
  ASSERT_EQ(session_.spec().weight_overlay.size(),
            engine_.quality_model().weights().size());
  EXPECT_DOUBLE_EQ(session_.spec().weight_overlay[static_cast<size_t>(idx)],
                   0.7);
  EXPECT_DOUBLE_EQ(session_.effective_weights()[static_cast<size_t>(idx)],
                   0.7);
  // The overlay still sums to 1 (rescale semantics are unchanged).
  double sum = 0.0;
  for (double w : session_.spec().weight_overlay) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_FALSE(session_.SetWeight("bogus", 0.5).ok());
}

TEST_F(SessionTest, TwoSessionsSolveUnderTheirOwnWeights) {
  // The regression for the shared-mutation bug: two sessions over one
  // engine set different weights, and each solve matches a fresh
  // single-tenant solve under that spec byte-for-byte.
  Session a(&engine_);
  Session b(&engine_);
  a.mutable_spec().max_sources = 3;
  b.mutable_spec().max_sources = 3;
  ASSERT_TRUE(a.SetWeight("cardinality", 0.7).ok());
  ASSERT_TRUE(b.SetWeight("coverage", 0.8).ok());

  Result<Solution> sol_a = a.Iterate();
  Result<Solution> sol_b = b.Iterate();
  ASSERT_TRUE(sol_a.ok()) << sol_a.status();
  ASSERT_TRUE(sol_b.ok()) << sol_b.status();

  Result<Solution> ref_a = engine_.Solve(a.spec());
  Result<Solution> ref_b = engine_.Solve(b.spec());
  ASSERT_TRUE(ref_a.ok() && ref_b.ok());
  EXPECT_EQ(sol_a.value().sources, ref_a.value().sources);
  EXPECT_EQ(sol_b.value().sources, ref_b.value().sources);
  EXPECT_EQ(sol_a.value().quality, ref_a.value().quality);
  EXPECT_EQ(sol_b.value().quality, ref_b.value().quality);
}

TEST_F(SessionTest, ClearConstraints) {
  ASSERT_TRUE(session_.PinSource(1).ok());
  ASSERT_TRUE(
      session_.AddGaConstraint(GlobalAttribute({AttributeId{0, 0}})).ok());
  session_.ClearConstraints();
  EXPECT_TRUE(session_.spec().source_constraints.empty());
  EXPECT_TRUE(session_.spec().ga_constraints.empty());
}

// ---------------------------- GA evaluation ------------------------------

TEST(GaEvaluationTest, HandComputedReport) {
  // Ground truth: 3 concepts; source schemas:
  //   s0: [c0, c1], s1: [c0, noise], s2: [c1, c2].
  GroundTruth truth(3,
                    {{0, 1}, {0, -1}, {1, 2}},
                    {"alpha", "beta", "gamma"});
  // Schema: pure GA for c0 {s0a0, s1a0}; false GA {s0a1, s1a1} (noise).
  MediatedSchema schema({GlobalAttribute({AttributeId{0, 0},
                                          AttributeId{1, 0}}),
                         GlobalAttribute({AttributeId{0, 1},
                                          AttributeId{1, 1}})});
  GaQualityReport report = EvaluateGaQuality(schema, {0, 1, 2}, truth);
  EXPECT_EQ(report.sources_selected, 3);
  EXPECT_EQ(report.pure_gas, 1);
  EXPECT_EQ(report.true_gas_selected, 1);
  EXPECT_EQ(report.false_gas, 1);
  EXPECT_EQ(report.attributes_in_true_gas, 2);
  // Available: c0 (s0, s1) and c1 (s0, s2); c2 only in s2.
  EXPECT_EQ(report.concepts_available, 2);
  EXPECT_EQ(report.true_gas_missed, 1);  // c1 not covered
}

TEST(GaEvaluationTest, MixedConceptGaIsFalse) {
  GroundTruth truth(2, {{0}, {1}}, {"a", "b"});
  MediatedSchema schema(
      {GlobalAttribute({AttributeId{0, 0}, AttributeId{1, 0}})});
  GaQualityReport report = EvaluateGaQuality(schema, {0, 1}, truth);
  EXPECT_EQ(report.false_gas, 1);
  EXPECT_EQ(report.pure_gas, 0);
}

TEST(GaEvaluationTest, FragmentedConceptCountedOnce) {
  GroundTruth truth(1, {{0}, {0}, {0}, {0}}, {"a"});
  MediatedSchema schema(
      {GlobalAttribute({AttributeId{0, 0}, AttributeId{1, 0}}),
       GlobalAttribute({AttributeId{2, 0}, AttributeId{3, 0}})});
  GaQualityReport report = EvaluateGaQuality(schema, {0, 1, 2, 3}, truth);
  EXPECT_EQ(report.pure_gas, 2);
  EXPECT_EQ(report.true_gas_selected, 1);  // one concept, counted once
  EXPECT_EQ(report.attributes_in_true_gas, 4);
  EXPECT_EQ(report.true_gas_missed, 0);
}

TEST(GaEvaluationTest, ToStringContainsFields) {
  GaQualityReport report;
  report.sources_selected = 20;
  report.true_gas_selected = 12;
  std::string text = ToString(report);
  EXPECT_NE(text.find("sources selected"), std::string::npos);
  EXPECT_NE(text.find("20"), std::string::npos);
  EXPECT_NE(text.find("true GAs selected"), std::string::npos);
}

// ------------------------------- report ---------------------------------

TEST(ReportTest, FormatSolutionMentionsSourcesAndQefs) {
  Engine engine = MakeEngine(20);
  ProblemSpec spec;
  spec.max_sources = 5;
  Result<Solution> solution =
      engine.Solve(spec, SolverKind::kGreedy, FastSolve());
  ASSERT_TRUE(solution.ok());
  std::string text =
      FormatSolution(*solution, engine.universe(), engine.quality_model());
  EXPECT_NE(text.find("overall quality"), std::string::npos);
  EXPECT_NE(text.find("books-src-"), std::string::npos);
  EXPECT_NE(text.find("matching"), std::string::npos);
  EXPECT_NE(text.find("mediated schema"), std::string::npos);
  EXPECT_NE(text.find("greedy"), std::string::npos);
}

TEST(ReportTest, FormatMediatedSchemaShowsAttributeNames) {
  Engine engine = MakeEngine(10);
  ProblemSpec spec;
  Result<MatchResult> match =
      engine.MatchSources(spec, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  ASSERT_TRUE(match.ok());
  ASSERT_GT(match->schema.num_gas(), 0);
  std::string text = FormatMediatedSchema(match->schema, match->ga_qualities,
                                          engine.universe());
  EXPECT_NE(text.find("GA 0"), std::string::npos);
  EXPECT_NE(text.find("books-src-"), std::string::npos);
  EXPECT_NE(text.find("."), std::string::npos);
}

}  // namespace
}  // namespace ube
