// The schema-drift and fault-coupled-feed oracles.
//
// Drift oracle: after every churn event of a drift-heavy trace (attribute
// renames, adds and drops mixed with the source-level kinds), the
// incrementally patched similarity graph must be Fingerprint()-identical to
// a from-scratch rebuild over the mutated universe, and a matcher over the
// patched graph must produce byte-identical Match output
// (MatchResultFingerprint) to one over the rebuilt graph. Exercised across
// >= 50 seeded traces.
//
// Fault-coupled oracle: GenerateFaultCoupledTrace is a pure function of
// (universe content, options) — the same seed and fault plan replay to a
// bit-identical trace (ChurnTraceFingerprint) and identical stats; all-zero
// rates reproduce the base feed exactly; and RunContinuous over a coupled
// trace replays bit-identically across thread counts.
//
// UBE_PROPERTY_SEED reruns a named failure; UBE_FAULT_RATE elevates the
// fault pressure of the coupled suite (see TESTING.md).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/change_feed.h"
#include "core/engine.h"
#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "source/fault_coupled_feed.h"
#include "source/flaky.h"
#include "source/live_universe.h"
#include "testkit/generators.h"
#include "testkit/property.h"
#include "text/similarity.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ube {
namespace {

using testkit::PropertyRunner;

// A drift-heavy feed: schema events dominate, but every kind stays in play
// so drift interleaves with adds, removes and refreshes.
ChurnFeedConfig DriftHeavyFeed(uint64_t seed) {
  ChurnFeedConfig config;
  config.seed = seed;
  config.events_per_sec = 2.0;
  config.horizon_ms = 8'000.0;  // ~16 events per trace
  config.attr_rename_weight = 3.0;
  config.attr_add_weight = 2.0;
  config.attr_drop_weight = 2.0;
  return config;
}

std::vector<SourceId> AliveSources(const Universe& universe) {
  std::vector<SourceId> alive;
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    if (universe.source(s).available()) alive.push_back(s);
  }
  return alive;
}

// Match over every alive source with no user constraints; the result's
// fingerprint is the matcher-state oracle (ClusterMatcher itself is
// stateless, so equal outputs over equal graphs is the whole contract).
uint64_t MatchFingerprint(const Universe& universe,
                          const SimilarityGraph& graph) {
  ClusterMatcher matcher(universe, graph);
  Result<MatchResult> result = matcher.Match(AliveSources(universe), {}, {});
  UBE_CHECK(result.ok(), "Match over alive sources must be well-formed");
  return MatchResultFingerprint(*result);
}

// The tentpole oracle: patched graph == rebuilt graph after every event,
// and the matcher agrees, across >= 50 seeded drift-heavy traces on both
// the n-gram fast path and the generic-measure path.
TEST(DriftPropertyTest, PatchedGraphAndMatcherMatchRebuild) {
  PropertyRunner runner("drift-patch-vs-rebuild", 50);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    testkit::UniverseGenOptions gen;
    gen.min_sources = 5;
    gen.max_sources = 10;
    Universe universe = testkit::GenerateUniverse(rng, gen);
    ChurnTrace trace =
        GenerateChurnTrace(universe, DriftHeavyFeed(rng.Next64())).value();

    const bool ngram = rng.Bernoulli(0.5);
    auto make_measure = [ngram]() -> std::unique_ptr<AttributeSimilarity> {
      if (ngram) return MakeDefaultSimilarity();
      return std::make_unique<JaroWinklerSimilarity>(0.1);
    };
    LiveUniverse::Options live_options;
    live_options.similarity = make_measure();
    LiveUniverse live(CloneUniverse(universe), std::move(live_options));
    int step = 0;
    int drift_seen = 0;
    for (const ChurnEvent& event : trace.events) {
      SCOPED_TRACE("event " + std::to_string(step++) + " kind " +
                   std::to_string(static_cast<int>(event.kind)) + " source " +
                   std::to_string(event.source) + " attr " +
                   std::to_string(event.attr_index) + " '" + event.attr_name +
                   "'");
      if (IsSchemaDrift(event.kind)) ++drift_seen;
      ASSERT_TRUE(live.Apply(event).ok());
      SimilarityGraph rebuilt(live.universe(), make_measure(), 0.25);
      ASSERT_EQ(live.graph().Fingerprint(), rebuilt.Fingerprint());
      // The matcher oracle is O(attributes^2); sample it rather than
      // running it on every event of every case.
      if (step % 4 == 0) {
        ASSERT_EQ(MatchFingerprint(live.universe(), live.graph()),
                  MatchFingerprint(live.universe(), rebuilt));
      }
    }
    ASSERT_EQ(MatchFingerprint(live.universe(), live.graph()),
              MatchFingerprint(
                  live.universe(),
                  SimilarityGraph(live.universe(), make_measure(), 0.25)));
    // Drift-heavy weights must actually exercise the drift kinds: across
    // the whole suite every trace carries some, and most carry several.
    if (!trace.events.empty()) {
      EXPECT_GT(drift_seen, 0) << "trace of " << trace.events.size()
                               << " events drew no schema drift";
    }
  }
}

// Seed stability: the trace (including every drift payload) is a pure
// function of (universe content, config) — same seed, same fingerprint;
// different seed, different fingerprint.
TEST(DriftPropertyTest, TraceFingerprintIsSeedStable) {
  PropertyRunner runner("drift-trace-seed-stable", 20);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = testkit::GenerateUniverse(rng);
    const uint64_t seed = rng.Next64();
    ChurnTrace a = GenerateChurnTrace(universe, DriftHeavyFeed(seed)).value();
    ChurnTrace b = GenerateChurnTrace(universe, DriftHeavyFeed(seed)).value();
    ASSERT_EQ(ChurnTraceFingerprint(a), ChurnTraceFingerprint(b));
    ChurnTrace other =
        GenerateChurnTrace(universe, DriftHeavyFeed(seed ^ 0x5a5a)).value();
    if (!a.events.empty() || !other.events.empty()) {
      EXPECT_NE(ChurnTraceFingerprint(a), ChurnTraceFingerprint(other));
    }
  }
}

// Fault rates for the coupled suite: enough pressure to trip breakers in
// most traces, overridable via UBE_FAULT_RATE for chaos soaks.
FaultRates CoupledRates() {
  FaultRates defaults;
  defaults.transient = 0.10;
  defaults.timeout = 0.05;
  defaults.stale = 0.05;
  return FaultPlan::RatesFromEnv(defaults);
}

FaultCoupledOptions CoupledOptions(uint64_t feed_seed, uint64_t fault_seed) {
  FaultCoupledOptions options;
  options.feed = DriftHeavyFeed(feed_seed);
  options.feed.horizon_ms = 12'000.0;
  options.rates = CoupledRates();
  options.fault_seed = fault_seed;
  options.probe_period_ms = 800.0;
  return options;
}

// Replay contract: the coupled trace and its stats are a pure function of
// (universe content, options); the fault seed is real weather (different
// seed, different trace); zero rates reproduce the base feed bit-for-bit.
TEST(FaultCoupledPropertyTest, ReplayIsBitIdentical) {
  PropertyRunner runner("fault-coupled-replay", 20);
  int64_t total_probes = 0;
  int total_fault_events = 0;
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    testkit::UniverseGenOptions gen;
    gen.min_sources = 6;
    gen.max_sources = 10;
    Universe universe = testkit::GenerateUniverse(rng, gen);
    const uint64_t feed_seed = rng.Next64();
    const uint64_t fault_seed = rng.Next64();

    const FaultCoupledOptions options = CoupledOptions(feed_seed, fault_seed);
    FaultCoupledTrace a = GenerateFaultCoupledTrace(universe, options).value();
    FaultCoupledTrace b = GenerateFaultCoupledTrace(universe, options).value();
    ASSERT_EQ(ChurnTraceFingerprint(a.trace), ChurnTraceFingerprint(b.trace));
    ASSERT_TRUE(a.stats == b.stats);
    total_probes += a.stats.probes;
    total_fault_events += a.stats.fault_removes + a.stats.fault_revives +
                          a.stats.fault_stale_refreshes;

    // Different fault weather over the same base schedule.
    FaultCoupledOptions reweathered = options;
    reweathered.fault_seed = fault_seed ^ 0xbad5eedull;
    FaultCoupledTrace w =
        GenerateFaultCoupledTrace(universe, reweathered).value();
    if (a.stats.probe_failures + w.stats.probe_failures > 0) {
      EXPECT_NE(ChurnTraceFingerprint(a.trace), ChurnTraceFingerprint(w.trace));
    }

    // Zero rates: the probe layer vanishes, leaving the base feed exactly.
    FaultCoupledOptions quiet = options;
    quiet.rates = FaultRates{};
    FaultCoupledTrace q = GenerateFaultCoupledTrace(universe, quiet).value();
    ChurnTrace base = GenerateChurnTrace(universe, quiet.feed).value();
    ASSERT_EQ(ChurnTraceFingerprint(q.trace), ChurnTraceFingerprint(base));
    EXPECT_EQ(q.stats.probes, 0);
  }
  // The suite as a whole must exercise the probe layer.
  EXPECT_GT(total_probes, 0);
  EXPECT_GT(total_fault_events, 0);
}

// End-to-end determinism: RunContinuous over a fault-coupled trace replays
// bit-identically — per-step incumbents, qualities, budgets, escalation
// reasons — across thread counts (1 vs auto).
TEST(FaultCoupledPropertyTest, ContinuousReplayAcrossThreadCounts) {
  WorkloadConfig workload;
  workload.num_sources = 24;
  workload.scale = 0.001;
  Universe universe = GenerateWorkload(workload).universe;

  FaultCoupledOptions options = CoupledOptions(/*feed_seed=*/17,
                                               /*fault_seed=*/23);
  FaultCoupledTrace coupled =
      GenerateFaultCoupledTrace(universe, options).value();
  ASSERT_FALSE(coupled.trace.events.empty());

  ProblemSpec spec;
  spec.max_sources = 6;
  auto run = [&](int num_threads) {
    ContinuousOptions continuous;
    continuous.solver_options.seed = 42;
    continuous.solver_options.max_iterations = 120;
    continuous.solver_options.stall_iterations = 40;
    continuous.solver_options.num_threads = num_threads;
    continuous.repair.max_iterations = 30;
    Engine engine(CloneUniverse(universe), QualityModel::MakeDefault());
    return engine.RunContinuous(spec, coupled.trace, continuous);
  };
  Result<ContinuousReport> a = run(1);
  Result<ContinuousReport> b = run(0);  // auto thread count
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->events_applied, static_cast<int>(coupled.trace.events.size()));
  ASSERT_EQ(a->steps.size(), b->steps.size());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    const ContinuousStep& sa = a->steps[i];
    const ContinuousStep& sb = b->steps[i];
    EXPECT_EQ(sa.incumbent, sb.incumbent) << "step " << i;
    EXPECT_EQ(sa.quality_after, sb.quality_after) << "step " << i;
    EXPECT_EQ(sa.repair_budget, sb.repair_budget) << "step " << i;
    EXPECT_EQ(sa.escalation_reason, sb.escalation_reason) << "step " << i;
    EXPECT_EQ(sa.drift_events, sb.drift_events) << "step " << i;
    EXPECT_EQ(sa.evaluations, sb.evaluations) << "step " << i;
  }
  EXPECT_EQ(a->final_solution.sources, b->final_solution.sources);
  EXPECT_EQ(a->final_solution.quality, b->final_solution.quality);
}

}  // namespace
}  // namespace ube
