#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/distinct_estimator.h"
#include "sketch/pcsa.h"
#include "util/rng.h"

namespace ube {
namespace {

// ------------------------------ PCSA ------------------------------------

TEST(PcsaTest, EmptyEstimatesZero) {
  PcsaSketch sketch(64);
  EXPECT_TRUE(sketch.IsEmpty());
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 0.0);
}

TEST(PcsaTest, SingleItemSmallEstimate) {
  PcsaSketch sketch(64);
  sketch.AddHash(12345);
  EXPECT_FALSE(sketch.IsEmpty());
  double est = sketch.Estimate();
  EXPECT_GT(est, 0.0);
  EXPECT_LT(est, 10.0);
}

TEST(PcsaTest, DuplicatesDoNotGrowEstimate) {
  PcsaSketch sketch(64);
  for (int i = 0; i < 10000; ++i) sketch.AddHash(42);
  EXPECT_LT(sketch.Estimate(), 10.0);
}

TEST(PcsaTest, AddStringMatchesDistinctness) {
  PcsaSketch a(64), b(64);
  a.AddString("tuple one");
  a.AddString("tuple one");
  b.AddString("tuple one");
  EXPECT_EQ(a, b);  // duplicate adds leave the signature unchanged
}

// Accuracy sweep: (#distinct items, #bitmaps, tolerated relative error).
// PCSA standard error is ~0.78/sqrt(k); we allow ~3x that, plus extra
// headroom in the small-count regime where stochastic averaging is coarse.
class PcsaAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(PcsaAccuracyTest, EstimateWithinTolerance) {
  auto [count, bitmaps, tolerance] = GetParam();
  PcsaSketch sketch(bitmaps);
  Rng rng(1234);
  for (int i = 0; i < count; ++i) sketch.AddHash(rng.Next64());
  double est = sketch.Estimate();
  EXPECT_NEAR(est / count, 1.0, tolerance)
      << "count=" << count << " bitmaps=" << bitmaps << " est=" << est;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PcsaAccuracyTest,
    ::testing::Values(std::make_tuple(100, 64, 0.45),
                      std::make_tuple(1000, 64, 0.30),
                      std::make_tuple(10000, 64, 0.30),
                      std::make_tuple(100000, 64, 0.30),
                      std::make_tuple(1000, 256, 0.20),
                      std::make_tuple(10000, 256, 0.15),
                      std::make_tuple(100000, 256, 0.15),
                      std::make_tuple(100000, 1024, 0.08)));

TEST(PcsaTest, MergeEqualsUnionStream) {
  // The core property µBE exploits (Section 4): OR of signatures ==
  // signature of the concatenated streams, exactly.
  PcsaSketch a(128), b(128), both(128);
  Rng rng(9);
  std::vector<uint64_t> items_a, items_b;
  for (int i = 0; i < 5000; ++i) items_a.push_back(rng.Next64());
  for (int i = 0; i < 3000; ++i) items_b.push_back(rng.Next64());
  for (uint64_t x : items_a) {
    a.AddHash(x);
    both.AddHash(x);
  }
  for (uint64_t x : items_b) {
    b.AddHash(x);
    both.AddHash(x);
  }
  PcsaSketch merged = PcsaSketch::Union(a, b);
  EXPECT_EQ(merged, both);
  EXPECT_DOUBLE_EQ(merged.Estimate(), both.Estimate());
}

TEST(PcsaTest, MergeIsIdempotentAndCommutative) {
  PcsaSketch a(64), b(64);
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) a.AddHash(rng.Next64());
  for (int i = 0; i < 1000; ++i) b.AddHash(rng.Next64());
  PcsaSketch ab = PcsaSketch::Union(a, b);
  PcsaSketch ba = PcsaSketch::Union(b, a);
  EXPECT_EQ(ab, ba);
  PcsaSketch aba = PcsaSketch::Union(ab, a);
  EXPECT_EQ(aba, ab);  // idempotent
}

TEST(PcsaTest, MergeWithEmptyIsIdentity) {
  PcsaSketch a(64), empty(64);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) a.AddHash(rng.Next64());
  PcsaSketch merged = PcsaSketch::Union(a, empty);
  EXPECT_EQ(merged, a);
}

TEST(PcsaTest, OverlappingStreamsEstimateDistinct) {
  // a holds ids [0, 10000), b holds [5000, 15000): union = 15000 distinct.
  PcsaSketch a(256), b(256);
  for (uint64_t i = 0; i < 10000; ++i) a.AddHash(i);
  for (uint64_t i = 5000; i < 15000; ++i) b.AddHash(i);
  PcsaSketch u = PcsaSketch::Union(a, b);
  EXPECT_NEAR(u.Estimate() / 15000.0, 1.0, 0.2);
}

TEST(PcsaTest, FromBitmapsRoundTrip) {
  PcsaSketch a(64);
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) a.AddHash(rng.Next64());
  PcsaSketch b = PcsaSketch::FromBitmaps(a.bitmaps());
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(PcsaTest, SizeBytes) {
  EXPECT_EQ(PcsaSketch(64).SizeBytes(), 64 * sizeof(uint32_t));
  EXPECT_EQ(PcsaSketch(256).SizeBytes(), 256 * sizeof(uint32_t));
}

TEST(PcsaDeathTest, RejectsNonPowerOfTwoBitmaps) {
  EXPECT_DEATH(PcsaSketch(63), "power of two");
  EXPECT_DEATH(PcsaSketch(0), "power of two");
}

TEST(PcsaDeathTest, RejectsMismatchedMerge) {
  PcsaSketch a(64), b(128);
  EXPECT_DEATH(a.Merge(b), "different bitmap counts");
}

TEST(PcsaTest, EstimateMonotoneInObservedSet) {
  // Adding more distinct items never decreases the estimate (bitmaps only
  // gain bits).
  PcsaSketch sketch(64);
  Rng rng(13);
  double prev = 0.0;
  for (int block = 0; block < 20; ++block) {
    for (int i = 0; i < 500; ++i) sketch.AddHash(rng.Next64());
    double est = sketch.Estimate();
    EXPECT_GE(est, prev);
    prev = est;
  }
}

// ------------------------- DistinctSignature ----------------------------

TEST(ExactSignatureTest, CountsExactly) {
  ExactSignature sig;
  for (uint64_t i = 0; i < 100; ++i) sig.Add(i % 10);
  EXPECT_DOUBLE_EQ(sig.Estimate(), 10.0);
}

TEST(ExactSignatureTest, MergeIsSetUnion) {
  ExactSignature a, b;
  for (uint64_t i = 0; i < 10; ++i) a.Add(i);
  for (uint64_t i = 5; i < 20; ++i) b.Add(i);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), 20.0);
}

TEST(ExactSignatureTest, CloneIsDeep) {
  ExactSignature a;
  a.Add(1);
  std::unique_ptr<DistinctSignature> copy = a.Clone();
  a.Add(2);
  EXPECT_DOUBLE_EQ(copy->Estimate(), 1.0);
  EXPECT_DOUBLE_EQ(a.Estimate(), 2.0);
}

TEST(PcsaSignatureTest, WrapsSketch) {
  PcsaSignature sig(64);
  Rng rng(14);
  for (int i = 0; i < 5000; ++i) sig.Add(rng.Next64());
  EXPECT_NEAR(sig.Estimate() / 5000.0, 1.0, 0.3);
  EXPECT_EQ(sig.SizeBytes(), 64 * sizeof(uint32_t));
}

TEST(PcsaSignatureTest, CloneAndMergePreserveType) {
  PcsaSignature a(64), b(64);
  a.Add(1);
  b.Add(2);
  std::unique_ptr<DistinctSignature> c = a.Clone();
  c->MergeFrom(b);
  EXPECT_GT(c->Estimate(), 0.0);
}

TEST(SignatureDeathTest, CrossTypeMergeAborts) {
  PcsaSignature pcsa(64);
  ExactSignature exact;
  EXPECT_DEATH(pcsa.MergeFrom(exact), "PcsaSignature");
  EXPECT_DEATH(exact.MergeFrom(pcsa), "ExactSignature");
}

TEST(SignatureFactoryTest, MakesRequestedKind) {
  auto pcsa = MakeSignature(SignatureKind::kPcsa, 128);
  auto exact = MakeSignature(SignatureKind::kExact);
  EXPECT_NE(dynamic_cast<PcsaSignature*>(pcsa.get()), nullptr);
  EXPECT_NE(dynamic_cast<ExactSignature*>(exact.get()), nullptr);
  EXPECT_EQ(pcsa->SizeBytes(), 128 * sizeof(uint32_t));
}

TEST(SignatureParityTest, PcsaTracksExactWithinTolerance) {
  // The accuracy claim behind Section 7.3's "worst case error of 7%"
  // (they used enough bitmaps; with 1024 we comfortably reach that band).
  PcsaSignature pcsa(1024);
  ExactSignature exact;
  Rng rng(15);
  for (int i = 0; i < 50000; ++i) {
    uint64_t id = rng.UniformInt(uint64_t{40000});
    pcsa.Add(id);
    exact.Add(id);
  }
  EXPECT_NEAR(pcsa.Estimate() / exact.Estimate(), 1.0, 0.07);
}

}  // namespace
}  // namespace ube
