// Unified solver fixture (ISSUE 6): every SolverKind is described by a
// SolverTraits descriptor (monotonic? randomized? exact? anytime? budget?
// epsilon?) and this suite checks each implementation against its own
// descriptor on the pinned golden small universe — plus the portfolio
// acceptance bar: never worse than the best single solver at an equal
// evaluation budget.
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "optimize/solver.h"
#include "testkit/golden.h"
#include "testkit/oracles.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ube {
namespace {

using testkit::SolutionIsFeasible;
using testkit::SolutionsBitIdentical;

#ifndef UBE_TEST_DATA_DIR
#define UBE_TEST_DATA_DIR "tests/data"
#endif

// The pinned golden case (generator seed + options + recorded exhaustive
// optimum), loaded once; every fixture case below runs on this exact
// instance. Universe is move-only, so each engine regenerates it from the
// pinned seed — bit-identical by the golden file's contract.
const testkit::GoldenSmallUniverse& Golden() {
  static const testkit::GoldenSmallUniverse* instance = [] {
    const std::string path =
        std::string(UBE_TEST_DATA_DIR) + "/golden_small_universe.json";
    Result<testkit::GoldenSmallUniverse> golden =
        testkit::LoadGoldenSmallUniverse(path);
    if (!golden.ok()) {
      ADD_FAILURE() << "cannot load golden universe: " << golden.status();
      std::abort();
    }
    return new testkit::GoldenSmallUniverse(std::move(*golden));
  }();
  return *instance;
}

Engine MakeGoldenEngine() {
  const testkit::GoldenSmallUniverse& golden = Golden();
  Rng rng(golden.universe_seed);
  return Engine(testkit::GenerateUniverse(rng, golden.universe),
                QualityModel::MakeDefault());
}

// Matching-free model over the same golden universe: every QEF provides a
// delta scorer, so solvers actually take the incremental path instead of
// falling back (MakeDefault contains a matching QEF, which forces the full
// path — still a valid delta-vs-full case, just a trivial one).
QualityModel DataOnlyModel() {
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 0.4);
  model.AddQef(std::make_unique<CoverageQef>(), 0.3);
  model.AddQef(std::make_unique<RedundancyQef>(), 0.2);
  model.AddQef(std::make_unique<CharacteristicQef>("mttf",
                                                   Aggregation::kWeightedSum),
               0.1);
  return model;
}

Engine MakeGoldenEngine(QualityModel model) {
  const testkit::GoldenSmallUniverse& golden = Golden();
  Rng rng(golden.universe_seed);
  return Engine(testkit::GenerateUniverse(rng, golden.universe),
                std::move(model));
}

SolverOptions FixtureOptions(uint64_t seed = 42) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 80;
  options.stall_iterations = 25;
  options.restarts = 3;
  options.swarm_size = 10;
  options.random_samples = 120;
  return options;
}

// --- the descriptor table itself ----------------------------------------

TEST(SolverTraitsTest, CoversEveryKindExactlyOnce) {
  const std::vector<SolverKind>& kinds = AllSolverKinds();
  std::set<std::string> names;
  for (SolverKind kind : kinds) {
    SolverTraits traits = SolverTraitsFor(kind);
    EXPECT_EQ(traits.kind, kind);
    EXPECT_GT(traits.default_eval_budget, 0);
    EXPECT_GE(traits.quality_epsilon, 0.0);
    names.insert(std::string(SolverKindName(kind)));
  }
  EXPECT_EQ(names.size(), kinds.size()) << "duplicate solver display name";
  EXPECT_EQ(kinds.back(), SolverKind::kPortfolio)
      << "portfolio must come last: it composes the others";
  // Exactly one exact solver (the enumeration anchor of every oracle).
  int exact = 0;
  for (SolverKind kind : kinds) exact += SolverTraitsFor(kind).exact;
  EXPECT_EQ(exact, 1);
}

// --- per-solver fixture, driven by the descriptor -----------------------

class SolverFixtureTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverFixtureTest, MatchesItsDescriptorOnGoldenUniverse) {
  const SolverKind kind = GetParam();
  const SolverTraits traits = SolverTraitsFor(kind);
  const testkit::GoldenSmallUniverse& golden = Golden();
  Engine engine = MakeGoldenEngine();

  SolverOptions options = FixtureOptions();
  options.record_trace = true;
  Result<Solution> solution = engine.Solve(golden.spec, kind, options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_TRUE(SolutionIsFeasible(*solution, engine.universe(), golden.spec));

  // Quality lands within the descriptor's epsilon of the recorded optimum
  // and never above it.
  EXPECT_LE(solution->quality, golden.optimal_quality + 1e-9);
  EXPECT_GE(solution->quality,
            golden.optimal_quality - traits.quality_epsilon)
      << "quality gap exceeds the descriptor's epsilon";
  if (traits.exact) {
    EXPECT_NEAR(solution->quality, golden.optimal_quality, 1e-9);
  }

  // Monotonic incumbent trace.
  if (traits.monotonic_trace) {
    for (size_t i = 1; i < solution->stats.trace.size(); ++i) {
      EXPECT_GE(solution->stats.trace[i].best_quality,
                solution->stats.trace[i - 1].best_quality)
          << "trace not monotonic at point " << i;
      EXPECT_GE(solution->stats.trace[i].evaluations,
                solution->stats.trace[i - 1].evaluations);
    }
  }

  // Same seed replays bit-identically; non-randomized solvers must also be
  // seed-independent.
  Result<Solution> replay = engine.Solve(golden.spec, kind, options);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(SolutionsBitIdentical(*solution, *replay));
  if (!traits.randomized) {
    SolverOptions other_seed = options;
    other_seed.seed = options.seed + 101;
    Result<Solution> reseeded = engine.Solve(golden.spec, kind, other_seed);
    ASSERT_TRUE(reseeded.ok()) << reseeded.status();
    EXPECT_EQ(solution->sources, reseeded->sources)
        << "descriptor says deterministic, but the seed changed the result";
  }
}

TEST_P(SolverFixtureTest, HonorsEvaluationBudget) {
  const SolverKind kind = GetParam();
  const SolverTraits traits = SolverTraitsFor(kind);
  if (!traits.anytime) {
    GTEST_SKIP() << "not an anytime solver; budget truncation not promised";
  }
  const testkit::GoldenSmallUniverse& golden = Golden();
  Engine engine = MakeGoldenEngine();

  SolverOptions options = FixtureOptions();
  options.max_evaluations = 40;
  Result<Solution> solution = engine.Solve(golden.spec, kind, options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_TRUE(SolutionIsFeasible(*solution, engine.universe(), golden.spec));
  // The budget is checked between neighborhood batches, so a run may
  // overshoot by at most one batch (bounded here by the options above).
  EXPECT_LE(solution->stats.evaluations, 40 + 256)
      << "evaluation budget ignored";
  if (solution->stats.stop_reason != StopReason::kEvalBudget) {
    // Legitimate only when the solver finished before the cap.
    EXPECT_LT(solution->stats.evaluations, 40 + 256);
    EXPECT_NE(solution->stats.stop_reason, StopReason::kUnknown);
  }
}

TEST_P(SolverFixtureTest, TimeLimitStopsDeterministicallyUnderManualClock) {
  const SolverKind kind = GetParam();
  const SolverTraits traits = SolverTraitsFor(kind);
  if (!traits.anytime) {
    GTEST_SKIP() << "not an anytime solver; deadline truncation not promised";
  }
  const testkit::GoldenSmallUniverse& golden = Golden();
  Engine engine = MakeGoldenEngine();

  // Every elapsed-time reading costs 5 simulated ms, so a 20 ms limit
  // expires after exactly four checks — no real clock, no flakiness.
  auto run = [&] {
    ManualClock clock;
    clock.set_auto_advance_ms(5.0);
    SolverOptions options = FixtureOptions();
    options.clock = &clock;
    options.time_limit_seconds = 0.020;
    return engine.Solve(golden.spec, kind, options);
  };
  Result<Solution> first = run();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(SolutionIsFeasible(*first, engine.universe(), golden.spec));
  EXPECT_EQ(first->stats.stop_reason, StopReason::kTimeLimit);

  // The simulated deadline is part of the deterministic state, so the
  // truncated run replays bit-identically — the property a real clock can
  // never give.
  Result<Solution> second = run();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(SolutionsBitIdentical(*first, *second));
}

// Delta-vs-full differential axis: for every solver (portfolio included)
// and for both the sequential and the hardware-concurrency thread count,
// the incremental delta path must return a Solution byte-identical to the
// full path — sources, quality bits, counters and trace. Run on the
// matching-free model (where delta is genuinely active) and on the default
// matching model (where it must silently fall back).
TEST_P(SolverFixtureTest, DeltaMatchesFullPathBitIdentically) {
  const SolverKind kind = GetParam();
  const testkit::GoldenSmallUniverse& golden = Golden();
  for (bool matching : {false, true}) {
    Engine engine = matching ? MakeGoldenEngine()
                             : MakeGoldenEngine(DataOnlyModel());
    for (int threads : {1, 0}) {
      SolverOptions options = FixtureOptions();
      options.record_trace = true;
      options.num_threads = threads;
      options.delta_eval = false;
      Result<Solution> full = engine.Solve(golden.spec, kind, options);
      ASSERT_TRUE(full.ok()) << full.status();
      options.delta_eval = true;
      Result<Solution> delta = engine.Solve(golden.spec, kind, options);
      ASSERT_TRUE(delta.ok()) << delta.status();
      EXPECT_TRUE(SolutionsBitIdentical(*full, *delta))
          << "delta/full divergence (matching=" << matching
          << ", threads=" << threads << ")";
    }
  }
}

// Warm-start axis: every solver accepts SolverOptions::initial_incumbent.
// A feasible seed must never produce a solution worse than the seed itself;
// an infeasible seed must be discarded *before* any randomness is consumed,
// so the solve is bit-identical to a cold one.
TEST_P(SolverFixtureTest, WarmStartNeverWorseThanSeedAndFallsBackCold) {
  const SolverKind kind = GetParam();
  const testkit::GoldenSmallUniverse& golden = Golden();
  Engine engine = MakeGoldenEngine();

  SolverOptions cold_options = FixtureOptions();
  Result<Solution> cold = engine.Solve(golden.spec, kind, cold_options);
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Seed with the cold solution itself — the strongest feasible seed this
  // instance offers. Warm-start promises feasible output and quality at
  // least the seed's.
  SolverOptions warm_options = cold_options;
  warm_options.initial_incumbent = cold->sources;
  Result<Solution> warm = engine.Solve(golden.spec, kind, warm_options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(SolutionIsFeasible(*warm, engine.universe(), golden.spec));
  EXPECT_GE(warm->quality, cold->quality - 1e-12)
      << "warm-started solve returned worse than its seed";

  // An out-of-range seed is rejected up front; the solve must replay the
  // cold run bit-for-bit (the rng stream was never touched).
  SolverOptions bogus_options = cold_options;
  bogus_options.initial_incumbent = {SourceId{9'999}};
  Result<Solution> fallback = engine.Solve(golden.spec, kind, bogus_options);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_TRUE(SolutionsBitIdentical(*cold, *fallback))
      << "infeasible seed changed the solve";

  // Same for a seed that violates the cardinality bound: every source,
  // which always exceeds max_sources on the golden instance.
  std::vector<SourceId> everything;
  for (SourceId s = 0; s < engine.universe().num_sources(); ++s) {
    everything.push_back(s);
  }
  ASSERT_GT(static_cast<int>(everything.size()), golden.spec.max_sources);
  SolverOptions oversize_options = cold_options;
  oversize_options.initial_incumbent = std::move(everything);
  Result<Solution> oversize = engine.Solve(golden.spec, kind, oversize_options);
  ASSERT_TRUE(oversize.ok()) << oversize.status();
  EXPECT_TRUE(SolutionsBitIdentical(*cold, *oversize))
      << "oversized seed changed the solve";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SolverFixtureTest, ::testing::ValuesIn(AllSolverKinds()),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

// --- portfolio acceptance bar -------------------------------------------

TEST(PortfolioTest, NeverWorseThanBestSingleSolverAtEqualBudget) {
  const testkit::GoldenSmallUniverse& golden = Golden();
  Engine engine = MakeGoldenEngine();
  const int64_t budget = 2'000;

  double best_single = 0.0;
  for (SolverKind kind : AllSolverKinds()) {
    if (kind == SolverKind::kPortfolio) continue;
    SolverOptions options = FixtureOptions();
    options.max_evaluations = budget;
    Result<Solution> solution = engine.Solve(golden.spec, kind, options);
    if (!solution.ok()) continue;  // e.g. a solver refusing the instance
    best_single = std::max(best_single, solution->quality);
  }
  ASSERT_GT(best_single, 0.0);

  SolverOptions options = FixtureOptions();
  options.max_evaluations = budget;
  Result<Solution> portfolio =
      engine.Solve(golden.spec, SolverKind::kPortfolio, options);
  ASSERT_TRUE(portfolio.ok()) << portfolio.status();
  EXPECT_TRUE(SolutionIsFeasible(*portfolio, engine.universe(), golden.spec));
  EXPECT_GE(portfolio->quality, best_single - 1e-9)
      << "portfolio lost to a single solver on the same budget";
  // On the golden instance the exhaustive contender completes within its
  // probe share, so the portfolio must return the recorded optimum.
  EXPECT_NEAR(portfolio->quality, golden.optimal_quality, 1e-9);
  EXPECT_EQ(portfolio->stats.stop_reason, StopReason::kExhausted);
}

TEST(PortfolioTest, ReplaysBitIdenticallyAndAccountsEffort) {
  const testkit::GoldenSmallUniverse& golden = Golden();
  Engine engine = MakeGoldenEngine();
  SolverOptions options = FixtureOptions();
  options.max_evaluations = 1'000;

  Result<Solution> first =
      engine.Solve(golden.spec, SolverKind::kPortfolio, options);
  Result<Solution> second =
      engine.Solve(golden.spec, SolverKind::kPortfolio, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(SolutionsBitIdentical(*first, *second));
  EXPECT_EQ(first->stats.solver_name, "portfolio");
  EXPECT_GT(first->stats.evaluations, 0);
}

}  // namespace
}  // namespace ube
