#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "matching/cluster_matcher.h"
#include "optimize/evaluator.h"
#include "optimize/search_state.h"
#include "optimize/solver.h"
#include "optimize/solvers.h"
#include "qef/quality_model.h"
#include "sketch/distinct_estimator.h"
#include "source/universe.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ube {
namespace {

// A 10-source universe whose optimum is known by construction: sources with
// higher ids have more tuples, all disjoint, identical schemas ("title"),
// so quality = Card (weight 1) and the best m sources are the top-m ids.
class KnownOptimumFixture {
 public:
  explicit KnownOptimumFixture(int n = 10) {
    for (int i = 0; i < n; ++i) {
      DataSource s("s" + std::to_string(i), SourceSchema({"title"}));
      s.set_cardinality((i + 1) * 100);
      auto sig = std::make_unique<ExactSignature>();
      for (int t = 0; t < (i + 1) * 100; ++t) {
        sig->Add(static_cast<uint64_t>(i) * 1000000 + t);
      }
      s.set_signature(std::move(sig));
      universe_.AddSource(std::move(s));
    }
    model_.AddQef(std::make_unique<CardinalityQef>(), 1.0);
    graph_ = std::make_unique<SimilarityGraph>(
        SimilarityGraph::WithDefaults(universe_, 0.25));
    matcher_ = std::make_unique<ClusterMatcher>(universe_, *graph_);
  }

  CandidateEvaluator MakeEvaluator(const ProblemSpec& spec) {
    return CandidateEvaluator(universe_, *matcher_, model_, spec);
  }

  Universe universe_;
  QualityModel model_;
  std::unique_ptr<SimilarityGraph> graph_;
  std::unique_ptr<ClusterMatcher> matcher_;
};

ProblemSpec SpecWithM(int m) {
  ProblemSpec spec;
  spec.max_sources = m;
  return spec;
}

SolverOptions FastOptions(uint64_t seed = 42) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 150;
  options.stall_iterations = 40;
  options.random_samples = 300;
  return options;
}

// ----------------------------- evaluator --------------------------------

TEST(EvaluatorTest, ValidateSpecCatchesBadInput) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(0);
  EXPECT_FALSE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
  spec = SpecWithM(3);
  spec.theta = 1.5;
  EXPECT_FALSE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
  spec = SpecWithM(3);
  spec.beta = 0;
  EXPECT_FALSE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
  spec = SpecWithM(3);
  spec.source_constraints = {99};
  EXPECT_FALSE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
  spec = SpecWithM(1);
  spec.source_constraints = {0, 1};
  Status s = CandidateEvaluator::ValidateSpec(fx.universe_, spec);
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  spec = SpecWithM(3);
  spec.ga_constraints = {GlobalAttribute({AttributeId{0, 0},
                                          AttributeId{0, 0}})};
  EXPECT_TRUE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
  spec.ga_constraints = {GlobalAttribute({AttributeId{0, 7}})};
  EXPECT_FALSE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
}

TEST(EvaluatorTest, RequiredSourcesUnionOfConstraints) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(5);
  spec.source_constraints = {3, 1};
  spec.ga_constraints = {
      GlobalAttribute({AttributeId{5, 0}, AttributeId{1, 0}})};
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  EXPECT_EQ(eval.required_sources(), (std::vector<SourceId>{1, 3, 5}));
}

TEST(EvaluatorTest, QualityMemoizes) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::vector<SourceId> candidate = {7, 8, 9};
  double q1 = eval.Quality(candidate);
  int64_t evals = eval.num_evaluations();
  double q2 = eval.Quality(candidate);
  EXPECT_DOUBLE_EQ(q1, q2);
  EXPECT_EQ(eval.num_evaluations(), evals);
  EXPECT_EQ(eval.num_cache_hits(), 1);
}

TEST(EvaluatorTest, QualityIsCardFraction) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(2);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  // Total cardinality = 100 * (1 + ... + 10) = 5500.
  EXPECT_NEAR(eval.Quality({8, 9}), (900.0 + 1000.0) / 5500.0, 1e-12);
}

TEST(EvaluatorTest, ClearCacheDropsMemoizedEntries) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::vector<SourceId> candidate = {7, 8, 9};
  eval.Quality(candidate);
  EXPECT_EQ(eval.num_evaluations(), 1);
  // ResetCounters alone must not keep the next lookup warm-cached... it
  // zeroes counters but leaves the cache; ClearCache drops the entries.
  eval.ResetCounters();
  eval.Quality(candidate);
  EXPECT_EQ(eval.num_evaluations(), 0);
  EXPECT_EQ(eval.num_cache_hits(), 1);
  eval.ClearCache();
  eval.ResetCounters();
  eval.Quality(candidate);
  EXPECT_EQ(eval.num_evaluations(), 1);
  EXPECT_EQ(eval.num_cache_hits(), 0);
  // BeginRun = ClearCache + ResetCounters.
  eval.BeginRun();
  EXPECT_EQ(eval.num_evaluations(), 0);
  eval.Quality(candidate);
  EXPECT_EQ(eval.num_evaluations(), 1);
  EXPECT_EQ(eval.num_cache_hits(), 0);
}

TEST(EvaluatorTest, SolverRunsStartCacheCold) {
  // Two identical runs on one evaluator must report identical (non-zero)
  // evaluation counts: the second run gets no free hits from the first
  // run's cache, so cross-solver benchmark comparisons stay fair.
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  TabuSearchSolver solver;
  Result<Solution> first = solver.Solve(eval, FastOptions(3));
  Result<Solution> second = solver.Solve(eval, FastOptions(3));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->stats.evaluations, 0);
  EXPECT_EQ(first->stats.evaluations, second->stats.evaluations);
  EXPECT_EQ(first->stats.cache_hits, second->stats.cache_hits);
}

TEST(EvaluatorTest, HashCollisionsReturnCorrectQualities) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(2);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  // Force every candidate onto one cache key: lookups now collide
  // constantly and must verify the stored candidate instead of returning
  // another candidate's quality.
  eval.SetHashFunctionForTesting(
      [](const std::vector<SourceId>&) -> uint64_t { return 0; });
  const double q9 = 1000.0 / 5500.0;
  const double q1 = 200.0 / 5500.0;
  EXPECT_NEAR(eval.Quality({9}), q9, 1e-12);
  EXPECT_NEAR(eval.Quality({1}), q1, 1e-12);   // collides with {9}
  EXPECT_NEAR(eval.Quality({9}), q9, 1e-12);   // and back
  EXPECT_NEAR(eval.Quality({1}), q1, 1e-12);
  // Batch path under the same degenerate hash.
  std::vector<std::vector<SourceId>> batch = {{9}, {1}, {8, 9}, {9}};
  std::vector<double> qualities = eval.QualityBatch(batch);
  EXPECT_NEAR(qualities[0], q9, 1e-12);
  EXPECT_NEAR(qualities[1], q1, 1e-12);
  EXPECT_NEAR(qualities[2], 1900.0 / 5500.0, 1e-12);
  EXPECT_NEAR(qualities[3], q9, 1e-12);
}

TEST(EvaluatorTest, QualityBatchMatchesSequentialQuality) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::vector<std::vector<SourceId>> batch = {
      {7, 8, 9}, {0, 1}, {7, 8, 9}, {2}, {0, 1}, {5}};
  CandidateEvaluator reference = fx.MakeEvaluator(spec);
  std::vector<double> expected;
  for (const auto& candidate : batch) {
    expected.push_back(reference.Quality(candidate));
  }
  // Inline (no pool) batch.
  std::vector<double> inline_results = eval.QualityBatch(batch);
  EXPECT_EQ(inline_results, expected);
  // Duplicate candidates are computed once and counted as hits, exactly
  // like the sequential Quality() loop.
  EXPECT_EQ(eval.num_evaluations(), reference.num_evaluations());
  EXPECT_EQ(eval.num_cache_hits(), reference.num_cache_hits());
  // Pooled batch: identical values and counter totals.
  eval.BeginRun();
  ThreadPool pool(4);
  std::vector<double> pooled_results = eval.QualityBatch(batch, &pool);
  EXPECT_EQ(pooled_results, expected);
  EXPECT_EQ(eval.num_evaluations(), reference.num_evaluations());
  EXPECT_EQ(eval.num_cache_hits(), reference.num_cache_hits());
}

TEST(EvaluatorTest, QualityBatchEmptyBatchIsANoOp) {
  KnownOptimumFixture fx;
  CandidateEvaluator eval = fx.MakeEvaluator(SpecWithM(3));
  std::vector<std::vector<SourceId>> empty;
  EXPECT_TRUE(eval.QualityBatch(empty).empty());
  EXPECT_EQ(eval.num_evaluations(), 0);
  EXPECT_EQ(eval.num_cache_hits(), 0);
  // Same with a pool attached: no work must be dispatched.
  ThreadPool pool(2);
  EXPECT_TRUE(eval.QualityBatch(empty, &pool).empty());
  EXPECT_EQ(eval.num_evaluations(), 0);
  EXPECT_EQ(eval.num_cache_hits(), 0);
}

TEST(EvaluatorTest, QualityBatchSingleCandidateMatchesQuality) {
  KnownOptimumFixture fx;
  CandidateEvaluator eval = fx.MakeEvaluator(SpecWithM(3));
  CandidateEvaluator reference = fx.MakeEvaluator(SpecWithM(3));
  std::vector<std::vector<SourceId>> batch = {{7, 8, 9}};
  ThreadPool pool(4);
  // A single-miss batch takes the inline path even with a pool; value and
  // counters must match the plain Quality() call exactly.
  std::vector<double> pooled = eval.QualityBatch(batch, &pool);
  ASSERT_EQ(pooled.size(), 1u);
  EXPECT_EQ(pooled[0], reference.Quality({7, 8, 9}));
  EXPECT_EQ(eval.num_evaluations(), 1);
  EXPECT_EQ(eval.num_cache_hits(), 0);
  // Second time around it is answered from cache.
  EXPECT_EQ(eval.QualityBatch(batch, &pool)[0], pooled[0]);
  EXPECT_EQ(eval.num_evaluations(), 1);
  EXPECT_EQ(eval.num_cache_hits(), 1);
}

// ----------------------------- SearchState ------------------------------

TEST(SearchStateTest, RandomInitialIsFeasible) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(4);
  spec.source_constraints = {2};
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    SearchState state(eval, rng);
    EXPECT_EQ(state.size(), 4);
    EXPECT_TRUE(state.Contains(2));
    EXPECT_TRUE(std::is_sorted(state.sources().begin(),
                               state.sources().end()));
  }
}

TEST(SearchStateTest, MovesPreserveInvariants) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(4);
  spec.source_constraints = {0, 5};
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Rng rng(6);
  SearchState state(eval, rng);
  for (int step = 0; step < 2000; ++step) {
    SearchState::Move move;
    ASSERT_TRUE(state.RandomMove(rng, &move));
    std::vector<SourceId> next = state.Apply(move);
    EXPECT_TRUE(std::is_sorted(next.begin(), next.end()));
    EXPECT_GE(next.size(), 1u);
    EXPECT_LE(next.size(), 4u);
    EXPECT_TRUE(std::binary_search(next.begin(), next.end(), 0));
    EXPECT_TRUE(std::binary_search(next.begin(), next.end(), 5));
    state.Commit(move);
    EXPECT_EQ(state.sources(), next);
  }
}

TEST(SearchStateTest, NoMovesWhenEverythingRequired) {
  KnownOptimumFixture fx(3);
  ProblemSpec spec = SpecWithM(3);
  spec.source_constraints = {0, 1, 2};
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Rng rng(7);
  SearchState state(eval, rng);
  SearchState::Move move;
  EXPECT_FALSE(state.RandomMove(rng, &move));
}

TEST(SearchStateTest, NonMembers) {
  KnownOptimumFixture fx(5);
  ProblemSpec spec = SpecWithM(2);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  SearchState state(eval, {1, 3});
  EXPECT_EQ(state.NonMembers(), (std::vector<SourceId>{0, 2, 4}));
}

// ------------------------------ solvers ---------------------------------

class AllSolversTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(AllSolversTest, FindsKnownOptimum) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());
  Result<Solution> solution = solver->Solve(eval, FastOptions());
  ASSERT_TRUE(solution.ok()) << solution.status();
  // Optimum: {7, 8, 9} with Q = 2700/5500.
  EXPECT_EQ(solution->sources, (std::vector<SourceId>{7, 8, 9}))
      << "solver " << SolverKindName(GetParam());
  EXPECT_NEAR(solution->quality, 2700.0 / 5500.0, 1e-9);
  EXPECT_EQ(solution->stats.solver_name, SolverKindName(GetParam()));
  EXPECT_GT(solution->stats.evaluations, 0);
}

TEST_P(AllSolversTest, HonorsSourceConstraints) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  spec.source_constraints = {0};  // worst source, must still be chosen
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());
  Result<Solution> solution = solver->Solve(eval, FastOptions());
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_TRUE(std::binary_search(solution->sources.begin(),
                                 solution->sources.end(), 0));
  EXPECT_LE(solution->sources.size(), 3u);
}

TEST_P(AllSolversTest, RespectsMaxSources) {
  KnownOptimumFixture fx;
  for (int m : {1, 2, 5}) {
    ProblemSpec spec = SpecWithM(m);
    CandidateEvaluator eval = fx.MakeEvaluator(spec);
    std::unique_ptr<Solver> solver = MakeSolver(GetParam());
    Result<Solution> solution = solver->Solve(eval, FastOptions());
    ASSERT_TRUE(solution.ok());
    EXPECT_LE(static_cast<int>(solution->sources.size()), m);
    EXPECT_GE(solution->sources.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllSolversTest,
    ::testing::Values(SolverKind::kTabu, SolverKind::kLocalSearch,
                      SolverKind::kAnnealing, SolverKind::kPso,
                      SolverKind::kGreedy, SolverKind::kRandom,
                      SolverKind::kExhaustive),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

TEST(TabuSearchTest, DeterministicForSeed) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(4);
  TabuSearchSolver solver;
  CandidateEvaluator e1 = fx.MakeEvaluator(spec);
  CandidateEvaluator e2 = fx.MakeEvaluator(spec);
  Result<Solution> a = solver.Solve(e1, FastOptions(7));
  Result<Solution> b = solver.Solve(e2, FastOptions(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sources, b->sources);
  EXPECT_DOUBLE_EQ(a->quality, b->quality);
  EXPECT_EQ(a->stats.iterations, b->stats.iterations);
}

// Parallel evaluation must not change any observable output: for a fixed
// seed, num_threads = 1 and num_threads = 4 return the same sources,
// quality, iteration/evaluation counters and trace.
class ParallelDeterminismTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(ParallelDeterminismTest, ThreadCountDoesNotChangeResult) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(4);
  spec.source_constraints = {2};
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());

  SolverOptions sequential = FastOptions(13);
  sequential.record_trace = true;
  sequential.num_threads = 1;
  CandidateEvaluator eval_seq = fx.MakeEvaluator(spec);
  Result<Solution> seq = solver->Solve(eval_seq, sequential);
  ASSERT_TRUE(seq.ok()) << seq.status();

  SolverOptions parallel = sequential;
  parallel.num_threads = 4;
  CandidateEvaluator eval_par = fx.MakeEvaluator(spec);
  Result<Solution> par = solver->Solve(eval_par, parallel);
  ASSERT_TRUE(par.ok()) << par.status();

  EXPECT_EQ(seq->sources, par->sources);
  EXPECT_DOUBLE_EQ(seq->quality, par->quality);
  EXPECT_EQ(seq->stats.iterations, par->stats.iterations);
  EXPECT_EQ(seq->stats.evaluations, par->stats.evaluations);
  EXPECT_EQ(seq->stats.cache_hits, par->stats.cache_hits);
  ASSERT_EQ(seq->stats.trace.size(), par->stats.trace.size());
  for (size_t i = 0; i < seq->stats.trace.size(); ++i) {
    EXPECT_EQ(seq->stats.trace[i].evaluations,
              par->stats.trace[i].evaluations);
    EXPECT_DOUBLE_EQ(seq->stats.trace[i].best_quality,
                     par->stats.trace[i].best_quality);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ParallelDeterminismTest,
    ::testing::Values(SolverKind::kTabu, SolverKind::kLocalSearch,
                      SolverKind::kAnnealing, SolverKind::kPso,
                      SolverKind::kGreedy),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

TEST(TabuSearchTest, RestartsGetFreshStallBudget) {
  // On this tiny fixture the optimum is found almost immediately, so the
  // whole run is one long stall. Pre-fix, the stall counter survived
  // intensification restarts and killed the search after at most
  // stall_iterations total non-improving iterations (~3 restarts). Now each
  // restart gets its own restart_after window and the search ends after
  // kMaxUnproductiveRestarts consecutive unproductive restarts — strictly
  // more exploration than before, still far short of max_iterations.
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  SolverOptions options = FastOptions(5);
  options.max_iterations = 100000;
  options.stall_iterations = 60;  // restart_after = 20
  Result<Solution> solution = TabuSearchSolver().Solve(eval, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->sources, (std::vector<SourceId>{7, 8, 9}));
  // Terminates by unproductive restarts, not by exhausting the budget.
  EXPECT_LT(solution->stats.iterations, 1000);
  // And explores more than the pre-fix cap of stall_iterations iterations
  // after the last improvement (4 windows of 20 = 80 > 60, plus the moves
  // spent before the incumbent was found).
  EXPECT_GT(solution->stats.iterations, 60);
}

TEST(TabuSearchTest, MatchesExhaustiveOnSmallInstances) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    KnownOptimumFixture fx(8);
    ProblemSpec spec = SpecWithM(3);
    spec.source_constraints = {1};
    CandidateEvaluator tabu_eval = fx.MakeEvaluator(spec);
    CandidateEvaluator exact_eval = fx.MakeEvaluator(spec);
    Result<Solution> tabu =
        TabuSearchSolver().Solve(tabu_eval, FastOptions(seed));
    Result<Solution> exact =
        ExhaustiveSolver().Solve(exact_eval, FastOptions());
    ASSERT_TRUE(tabu.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(tabu->quality, exact->quality, 1e-9);
  }
}

TEST(ExhaustiveTest, CountsAllCandidates) {
  KnownOptimumFixture fx(5);
  ProblemSpec spec = SpecWithM(2);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Result<Solution> solution = ExhaustiveSolver().Solve(eval, SolverOptions());
  ASSERT_TRUE(solution.ok());
  // Candidates: C(5,1) + C(5,2) = 5 + 10 = 15 (empty set excluded).
  EXPECT_EQ(solution->stats.iterations, 15);
}

TEST(ExhaustiveTest, RefusesHugeInstances) {
  KnownOptimumFixture fx(40);
  ProblemSpec spec = SpecWithM(15);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Result<Solution> solution = ExhaustiveSolver().Solve(eval, SolverOptions());
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------ traces ----------------------------------

class TraceTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(TraceTest, TraceIsMonotoneAndEndsAtSolutionQuality) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  SolverOptions options = FastOptions();
  options.record_trace = true;
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());
  Result<Solution> solution = solver->Solve(eval, options);
  ASSERT_TRUE(solution.ok());
  const std::vector<TracePoint>& trace = solution->stats.trace;
  ASSERT_FALSE(trace.empty()) << SolverKindName(GetParam());
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].best_quality, trace[i - 1].best_quality);
    EXPECT_GE(trace[i].evaluations, trace[i - 1].evaluations);
  }
  EXPECT_NEAR(trace.back().best_quality, solution->quality, 1e-9);
  EXPECT_LE(trace.back().evaluations, solution->stats.evaluations);
}

TEST_P(TraceTest, NoTraceByDefault) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());
  Result<Solution> solution = solver->Solve(eval, FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->stats.trace.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TraceTest,
    ::testing::Values(SolverKind::kTabu, SolverKind::kLocalSearch,
                      SolverKind::kAnnealing, SolverKind::kPso,
                      SolverKind::kGreedy, SolverKind::kRandom),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

TEST(SolverFactoryTest, NamesRoundTrip) {
  for (SolverKind kind :
       {SolverKind::kTabu, SolverKind::kLocalSearch, SolverKind::kAnnealing,
        SolverKind::kPso, SolverKind::kGreedy, SolverKind::kRandom,
        SolverKind::kExhaustive}) {
    std::unique_ptr<Solver> solver = MakeSolver(kind);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), SolverKindName(kind));
  }
}

TEST(SolverTest, EmptyUniverseIsInfeasible) {
  Universe u;
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 1.0);
  SimilarityGraph graph = SimilarityGraph::WithDefaults(u, 0.25);
  ClusterMatcher matcher(u, graph);
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval(u, matcher, model, spec);
  Result<Solution> solution = TabuSearchSolver().Solve(eval, SolverOptions());
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kInfeasible);
}

// ----------------------------- banned sources ----------------------------

TEST(BannedSourcesTest, ValidateSpecRejectsContradictions) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  spec.banned_sources = {99};
  EXPECT_FALSE(CandidateEvaluator::ValidateSpec(fx.universe_, spec).ok());
  spec = SpecWithM(3);
  spec.source_constraints = {2};
  spec.banned_sources = {2};
  EXPECT_EQ(CandidateEvaluator::ValidateSpec(fx.universe_, spec).code(),
            StatusCode::kInfeasible);
  spec = SpecWithM(3);
  spec.ga_constraints = {GlobalAttribute({AttributeId{4, 0}})};
  spec.banned_sources = {4};
  EXPECT_EQ(CandidateEvaluator::ValidateSpec(fx.universe_, spec).code(),
            StatusCode::kInfeasible);
  spec = SpecWithM(3);
  spec.banned_sources = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(CandidateEvaluator::ValidateSpec(fx.universe_, spec).code(),
            StatusCode::kInfeasible);
}

class BannedSolversTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(BannedSolversTest, NeverSelectsBannedSources) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  // Ban the three best sources; the optimum becomes {4, 5, 6} (0-indexed
  // ids 6, 5, 4 have cardinalities 700, 600, 500).
  spec.banned_sources = {7, 8, 9};
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());
  Result<Solution> solution = solver->Solve(eval, FastOptions());
  ASSERT_TRUE(solution.ok()) << solution.status();
  for (SourceId banned : {7, 8, 9}) {
    EXPECT_FALSE(std::binary_search(solution->sources.begin(),
                                    solution->sources.end(), banned))
        << SolverKindName(GetParam());
  }
  EXPECT_EQ(solution->sources, (std::vector<SourceId>{4, 5, 6}))
      << SolverKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BannedSolversTest,
    ::testing::Values(SolverKind::kTabu, SolverKind::kLocalSearch,
                      SolverKind::kAnnealing, SolverKind::kPso,
                      SolverKind::kGreedy, SolverKind::kRandom,
                      SolverKind::kExhaustive),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

TEST(BannedSourcesTest, SearchStateNeverProposesBanned) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(4);
  spec.banned_sources = {1, 3, 5};
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Rng rng(9);
  SearchState state(eval, rng);
  for (int step = 0; step < 1000; ++step) {
    SearchState::Move move;
    ASSERT_TRUE(state.RandomMove(rng, &move));
    if (move.kind != SearchState::Move::Kind::kDrop) {
      EXPECT_NE(move.in, 1);
      EXPECT_NE(move.in, 3);
      EXPECT_NE(move.in, 5);
    }
    state.Commit(move);
  }
}

// ----------------------------- stop reasons -----------------------------

TEST(StopReasonTest, BudgetExhaustionReportsMaxIterations) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  SolverOptions options = FastOptions();
  options.max_iterations = 5;
  options.stall_iterations = 0;  // disabled: only the budget can stop us
  Result<Solution> solution = TabuSearchSolver().Solve(eval, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->stats.stop_reason, StopReason::kMaxIterations);
  EXPECT_EQ(solution->stats.iterations, 5);
}

TEST(StopReasonTest, StallReportsStalled) {
  // Tiny fixture, huge budget: the optimum is found almost immediately and
  // the search ends by unproductive restarts — a stall, not the budget.
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  SolverOptions options = FastOptions(5);
  options.max_iterations = 100000;
  options.stall_iterations = 60;
  Result<Solution> solution = TabuSearchSolver().Solve(eval, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->stats.stop_reason, StopReason::kStalled);
}

TEST(StopReasonTest, ExhaustiveReportsExhausted) {
  KnownOptimumFixture fx(5);
  ProblemSpec spec = SpecWithM(2);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Result<Solution> solution = ExhaustiveSolver().Solve(eval, SolverOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->stats.stop_reason, StopReason::kExhausted);
}

TEST(StopReasonTest, GreedyReportsConverged) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Result<Solution> solution =
      MakeSolver(SolverKind::kGreedy)->Solve(eval, FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->stats.stop_reason, StopReason::kConverged);
}

TEST(StopReasonTest, RandomReportsMaxIterations) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  Result<Solution> solution =
      MakeSolver(SolverKind::kRandom)->Solve(eval, FastOptions());
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->stats.stop_reason, StopReason::kMaxIterations);
}

// Regression for the time-limit overshoot bug: the deadline used to be
// checked only between outer iterations, so one iteration with a large
// candidate_moves batch could blow far past time_limit_seconds. With the
// pre-dispatch + post-batch checks a microscopic limit must stop every
// solver within its first iteration — not after max_iterations of them.
class TimeLimitTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(TimeLimitTest, TinyLimitStopsPromptlyWithTimeLimitReason) {
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(3);
  CandidateEvaluator eval = fx.MakeEvaluator(spec);
  SolverOptions options = FastOptions();
  options.max_iterations = 100000;
  options.stall_iterations = 0;
  options.random_samples = 100000;
  options.candidate_moves = 5000;  // one batch alone overshoots the limit
  options.time_limit_seconds = 1e-9;
  std::unique_ptr<Solver> solver = MakeSolver(GetParam());
  Result<Solution> solution = solver->Solve(eval, options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_EQ(solution->stats.stop_reason, StopReason::kTimeLimit)
      << SolverKindName(GetParam());
  EXPECT_LE(solution->stats.iterations, 1) << SolverKindName(GetParam());
  // Even a truncated run returns a feasible (nonempty, within-m) solution.
  EXPECT_GE(solution->sources.size(), 1u);
  EXPECT_LE(static_cast<int>(solution->sources.size()), spec.max_sources);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TimeLimitTest,
    ::testing::Values(SolverKind::kTabu, SolverKind::kLocalSearch,
                      SolverKind::kAnnealing, SolverKind::kPso,
                      SolverKind::kGreedy, SolverKind::kRandom),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(SolverKindName(info.param));
    });

// The incumbent trace must be STRICTLY improving even across tabu
// intensification restarts: a restart resets the current solution to the
// incumbent, and re-reaching (not beating) the incumbent afterwards must
// not append a duplicate trace point.
TEST(TraceAcrossRestartsTest, TabuTraceStrictlyImproving) {
  for (uint64_t seed : {3ull, 5ull, 11ull}) {
    KnownOptimumFixture fx;
    ProblemSpec spec = SpecWithM(4);
    CandidateEvaluator eval = fx.MakeEvaluator(spec);
    SolverOptions options = FastOptions(seed);
    options.record_trace = true;
    options.max_iterations = 2000;
    options.stall_iterations = 24;  // restart_after = 8: many restarts
    Result<Solution> solution = TabuSearchSolver().Solve(eval, options);
    ASSERT_TRUE(solution.ok());
    const std::vector<TracePoint>& trace = solution->stats.trace;
    ASSERT_FALSE(trace.empty());
    for (size_t i = 1; i < trace.size(); ++i) {
      EXPECT_GT(trace[i].best_quality, trace[i - 1].best_quality)
          << "seed " << seed << " trace index " << i;
      EXPECT_GE(trace[i].evaluations, trace[i - 1].evaluations);
    }
    EXPECT_NEAR(trace.back().best_quality, solution->quality, 1e-12);
  }
}

TEST(TraceAcrossRestartsTest, SlsTraceStrictlyImprovingAcrossRestarts) {
  for (uint64_t seed : {3ull, 7ull}) {
    KnownOptimumFixture fx;
    ProblemSpec spec = SpecWithM(4);
    CandidateEvaluator eval = fx.MakeEvaluator(spec);
    SolverOptions options = FastOptions(seed);
    options.record_trace = true;
    options.restarts = 8;
    Result<Solution> solution =
        MakeSolver(SolverKind::kLocalSearch)->Solve(eval, options);
    ASSERT_TRUE(solution.ok());
    const std::vector<TracePoint>& trace = solution->stats.trace;
    ASSERT_FALSE(trace.empty());
    for (size_t i = 1; i < trace.size(); ++i) {
      EXPECT_GT(trace[i].best_quality, trace[i - 1].best_quality)
          << "seed " << seed << " trace index " << i;
    }
  }
}

TEST(SolverComparisonTest, TabuAtLeastAsGoodAsRandom) {
  // Structured instance: matching quality + cardinality; tabu should find
  // at least as good a solution as random sampling given equal budget.
  KnownOptimumFixture fx;
  ProblemSpec spec = SpecWithM(4);
  SolverOptions options = FastOptions(11);
  options.random_samples = 100;
  options.max_iterations = 100;
  CandidateEvaluator tabu_eval = fx.MakeEvaluator(spec);
  CandidateEvaluator random_eval = fx.MakeEvaluator(spec);
  Result<Solution> tabu = TabuSearchSolver().Solve(tabu_eval, options);
  Result<Solution> random = RandomSolver().Solve(random_eval, options);
  ASSERT_TRUE(tabu.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_GE(tabu->quality + 1e-9, random->quality);
}

}  // namespace
}  // namespace ube
